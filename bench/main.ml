(* The benchmark harness: regenerates every table and figure of the paper
   (run with no arguments for all of them, or name experiments:
   tab1 tab2 fig1 fig5a fig5b fig5c fig6 fig7a fig7b fig8 fig9 tab3
   ablations adaptive faults micro engine).

   Flags (anywhere on the command line):
     --jobs N | -j N   size of the evaluation-engine worker pool
                       (default 1 = sequential; results are bit-identical
                       for any value)
     --backend NAME    evaluation substrate: domains (default) or
                       processes (forked workers; crash-isolated, same
                       results)
     --stats           print engine telemetry at exit
     --faults          arm the deterministic fault model for the lab engine
     --fault-rate R    overall injected fault rate in [0,1] (default 0.1)
     --fault-seed N    fault-schedule seed (default 1)
     --timeout S       simulated per-run wall-clock budget in seconds
     --repeats N       measurements per configuration (robust aggregation)
     --retries N       retry budget for transient faults (default 2)
     --checkpoint P    snapshot the cache/quarantine to P; resume if P exists
     --json            instead of experiments, take a machine-readable
                       performance snapshot (solo-tune wall/evals-per-sec/
                       cache hit rate + a loadgen burst against a forked
                       daemon) and write it to BENCH_<rev>.json

   Absolute speedups come from the simulated tool-chain, so they are not
   expected to equal the paper's testbed numbers; the shapes (who wins,
   roughly by how much, where greedy fails) are the reproduction target —
   EXPERIMENTS.md records the side-by-side comparison.

   "micro" runs Bechamel micro-benchmarks of the framework machinery (one
   Test.make per core operation); "engine" exercises the parallel
   evaluation engine (determinism, cache reuse, sequential-vs-parallel
   wall clock). *)

open Ft_experiments
module Table = Ft_util.Table

let jobs = ref 1
let backend = ref Ft_engine.Backend.default
let stats = ref false
let faults = ref false
let fault_rate = ref 0.1
let fault_seed = ref 1
let timeout = ref None
let repeats = ref 1
let retries = ref 2
let checkpoint = ref None
let cache_format = ref Ft_engine.Cache.default_format
let gate_path = ref None
let gate_min_ratio = ref 0.9
let gate_latency_slack = ref 3.0
let gate_hit_slack = ref 0.05

let policy () =
  let base = Ft_engine.Engine.default_policy in
  {
    base with
    Ft_engine.Engine.faults =
      (if !faults then
         Some (Ft_fault.Fault.make ~seed:!fault_seed ~rate:!fault_rate ())
       else None);
    timeout_s = Option.value ~default:base.Ft_engine.Engine.timeout_s !timeout;
    max_retries = !retries;
    repeats = !repeats;
  }

(* One engine for the whole lab; with --checkpoint it resumes from (and
   periodically snapshots to) the given path. *)
let make_engine () =
  let open Ft_engine in
  match !checkpoint with
  | None -> Engine.create ~jobs:!jobs ~backend:!backend ~policy:(policy ()) ()
  | Some path ->
      let ck = Checkpoint.create ~path ~format:!cache_format () in
      let cache, quarantine =
        match if Checkpoint.exists ck then Checkpoint.load ck else None with
        | Some (cache, quarantine) ->
            Printf.eprintf
              "bench: resuming from %s (%d cached summaries, %d quarantined)\n%!"
              path (Cache.length cache)
              (Quarantine.length quarantine);
            (cache, quarantine)
        | None -> (Cache.create (), Quarantine.create ())
      in
      Engine.create ~jobs:!jobs ~backend:!backend ~cache ~quarantine
        ~policy:(policy ()) ~checkpoint:ck ()

let lab = lazy (Lab.create ~engine:(make_engine ()) ())

let banner name description =
  Printf.printf "\n=== %s — %s ===\n%!" name description

let note fmt = Printf.printf (fmt ^^ "\n%!")

let run_tab1 () =
  banner "tab1" "Table 1: benchmark list";
  Table.print (Ft_suite.Suite.table1 ())

let run_tab2 () =
  banner "tab2" "Table 2: platforms and inputs";
  Table.print (Ft_suite.Suite.table2 ())

let run_fig1 () =
  banner "fig1" "Combined Elimination vs O3 (paper: no significant gain)";
  Series.print (Fig1.run (Lazy.force lab))

let run_fig5 panel =
  let platform, tag =
    match panel with
    | `A -> (Ft_prog.Platform.Opteron, "fig5a")
    | `B -> (Ft_prog.Platform.Sandy_bridge, "fig5b")
    | `C -> (Ft_prog.Platform.Broadwell, "fig5c")
  in
  banner tag
    "Random / G.realized / FR / CFR / G.Independent vs O3 (paper GM: CFR \
     +9.2/+10.3/+9.4%)";
  Series.print (Fig5.panel (Lazy.force lab) platform)

let run_fig6 () =
  banner "fig6"
    "State of the art on Broadwell (paper GM: OpenTuner +4.9%, COBAYN \
     static +4.6%, dynamic <1.0, PGO marginal, CFR +9.4%)";
  let l = Lazy.force lab in
  Series.print (Fig6.run l);
  List.iter
    (fun (p : Ft_prog.Program.t) ->
      let pgo = Lab.pgo l p in
      match pgo.Ft_baselines.Pgo_driver.diagnostic with
      | Some msg -> note "  note: %s" msg
      | None -> ())
    Ft_suite.Suite.all

let run_fig7 small =
  let tag = if small then "fig7a" else "fig7b" in
  banner tag
    "Generalization to different work-set sizes (paper GM: CFR +12.3% \
     small / +10.7% large)";
  Series.print (Fig7.panel (Lazy.force lab) ~small)

let run_fig8 () =
  banner "fig8" "Cloverleaf time-step scaling (paper: CFR benefit stable)";
  Series.print (Fig8.run (Lazy.force lab))

let run_fig9 () =
  banner "fig9"
    "Per-loop speedups, top-5 Cloverleaf kernels (paper: 256-bit loses on \
     cell3/cell7; scalar wins dt/mom9; acc wants 256)";
  Series.print (Casestudy.fig9 (Lazy.force lab))

let run_tab3 () =
  banner "tab3" "Decision matrix for the Cloverleaf kernels";
  Table.print (Casestudy.table3 (Lazy.force lab))

let run_ablations () =
  banner "ablations"
    "top-X sweep, convergence, adaptive budget, elimination variants, \
     critical flags";
  let l = Lazy.force lab in
  Series.print (Ablations.top_x_sweep l);
  Table.print (Ablations.convergence l);
  Table.print (Ablations.adaptive_budget l);
  Series.print (Ablations.elimination_variants l);
  Table.print (Ablations.critical_flags_table l)

let run_faults () =
  banner "faults"
    "search quality vs injected fault rate (retries, quarantine, best \
     valid CV)";
  Series.print
    (Faults.run
       ~telemetry:(Lab.telemetry (Lazy.force lab))
       ~fault_seed:!fault_seed ~seed:42 ~pool_size:1000 ~jobs:!jobs ())

(* --- Bechamel micro-benchmarks -------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let toolchain = Ft_machine.Toolchain.make Ft_prog.Platform.Broadwell in
  let program = Option.get (Ft_suite.Suite.find "Cloverleaf") in
  let input = Ft_suite.Suite.tuning_input Ft_prog.Platform.Broadwell program in
  let rng = Ft_util.Rng.create 7 in
  let cv = Ft_flags.Space.sample rng in
  let binary = Ft_machine.Toolchain.compile_uniform toolchain ~cv program in
  let pool = Ft_flags.Space.sample_pool rng 100 in
  let samples =
    List.init 200 (fun _ ->
        Option.get (Ft_flags.Cv.to_bits (Ft_flags.Space.sample_binary rng)))
  in
  Test.make_grouped ~name:"funcytuner"
    [
      Test.make ~name:"cv_sample"
        (Staged.stage (fun () -> ignore (Ft_flags.Space.sample rng)));
      Test.make ~name:"compile_program"
        (Staged.stage (fun () ->
             ignore
               (Ft_machine.Toolchain.compile_uniform toolchain ~cv program)));
      Test.make ~name:"evaluate_binary"
        (Staged.stage (fun () ->
             ignore
               (Ft_machine.Exec.evaluate
                  ~arch:toolchain.Ft_machine.Toolchain.arch ~input binary)));
      Test.make ~name:"measure_binary"
        (Staged.stage (fun () ->
             ignore
               (Ft_machine.Exec.measure
                  ~arch:toolchain.Ft_machine.Toolchain.arch ~input ~rng binary)));
      Test.make ~name:"top_k_prune"
        (Staged.stage (fun () ->
             let costs =
               Array.init 1000 (fun i -> float_of_int (i * 7919 mod 997))
             in
             ignore (Ft_util.Stats.top_k_indices 20 costs)));
      Test.make ~name:"crossover"
        (Staged.stage (fun () ->
             ignore (Ft_flags.Space.crossover rng pool.(3) pool.(7))));
      Test.make ~name:"chow_liu_fit"
        (Staged.stage (fun () ->
             ignore (Ft_cobayn.Chow_liu.fit ~dims:Ft_flags.Flag.count samples)));
    ]

let run_micro () =
  banner "micro" "Bechamel micro-benchmarks of the framework machinery";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 256) ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"Micro-benchmarks (monotonic clock)"
      [ "benchmark"; "ns/run" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> Printf.sprintf "%.0f" e
        | _ -> "n/a"
      in
      rows := (name, estimate) :: !rows)
    results;
  List.iter
    (fun (name, estimate) -> Table.add_row table [ name; estimate ])
    (List.sort compare !rows);
  Table.print table

(* --- evaluation-engine exercise -------------------------------------- *)

let run_engine () =
  banner "engine"
    "parallel evaluation engine: determinism, cache reuse, wall clock";
  let program = Option.get (Ft_suite.Suite.find "363.swim") in
  let platform = Ft_prog.Platform.Broadwell in
  let input = Ft_suite.Suite.tuning_input platform program in
  let collect jobs =
    let session =
      Funcytuner.Tuner.make_session ~pool_size:300 ~jobs ~platform ~program
        ~input ~seed:42 ()
    in
    let t0 = Unix.gettimeofday () in
    let c = Lazy.force session.Funcytuner.Tuner.collection in
    let elapsed = Unix.gettimeofday () -. t0 in
    (session, c, elapsed)
  in
  let parallel_jobs = max 4 !jobs in
  let _, seq, seq_s = collect 1 in
  let par_session, par, par_s = collect parallel_jobs in
  note "collection (K=300, swim/bdw): sequential %.3f s, %d workers %.3f s \
        (%.2fx)"
    seq_s parallel_jobs par_s (seq_s /. par_s);
  let identical =
    seq.Funcytuner.Collection.times = par.Funcytuner.Collection.times
    && seq.Funcytuner.Collection.totals = par.Funcytuner.Collection.totals
  in
  note "determinism: parallel matrix bit-identical to sequential = %b"
    identical;
  if not identical then failwith "engine determinism violated";
  (* CFR on the same session reuses the engine cache for every assignment
     it has already linked; a second CFR run is served entirely by it. *)
  let r1 = Funcytuner.Tuner.run_cfr ~top_x:10 par_session in
  let before =
    Ft_engine.Telemetry.snapshot
      (Funcytuner.Context.telemetry par_session.Funcytuner.Tuner.ctx)
  in
  let t0 = Unix.gettimeofday () in
  let r2 = Funcytuner.Tuner.run_cfr ~top_x:10 par_session in
  let warm_s = Unix.gettimeofday () -. t0 in
  let after =
    Ft_engine.Telemetry.snapshot
      (Funcytuner.Context.telemetry par_session.Funcytuner.Tuner.ctx)
  in
  note "CFR speedup %.3f; re-run from warm cache: %.3f s, +%d hits, +%d \
        misses, same result = %b"
    r1.Funcytuner.Result.speedup warm_s
    (after.Ft_engine.Telemetry.cache_hits
   - before.Ft_engine.Telemetry.cache_hits)
    (after.Ft_engine.Telemetry.cache_misses
   - before.Ft_engine.Telemetry.cache_misses)
    (r1.Funcytuner.Result.speedup = r2.Funcytuner.Result.speedup);
  print_string
    (Ft_engine.Telemetry.render
       (Funcytuner.Context.telemetry par_session.Funcytuner.Tuner.ctx))

(* --- bench --json: machine-readable performance snapshot -------------- *)

let json_out = ref false

let git_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "dev"
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "dev")

(* The daemon child is forked before any engine exists in this process
   (fork after spawning domains is undefined), runs a jobs=1 engine of
   its own, and exits when the parent's shutdown request drains it. *)
let fork_daemon ~socket_path =
  match Unix.fork () with
  | 0 ->
      let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
      Unix.dup2 devnull Unix.stdout;
      Unix.close devnull;
      let engine = Ft_engine.Engine.create ~jobs:1 ~policy:(policy ()) () in
      let runner = Ft_serve.Runner.make ~engine in
      ignore
        (Ft_serve.Server.serve
           ~telemetry:(Ft_engine.Engine.telemetry engine)
           (Ft_serve.Server.default_config ~socket_path)
           runner);
      Stdlib.exit 0
  | pid -> pid

(* --- perf regression gate ---------------------------------------------- *)

(* Compare this run's headline metrics against a committed seed snapshot
   (a BENCH_<rev>.json from an earlier revision).  Solo-tune throughput
   must reach [!gate_min_ratio] x the seed's; the cache hit rate may drop
   at most [!gate_hit_slack] absolute; loadgen p50/p99 latencies may grow
   at most [!gate_latency_slack] x.  Any violation exits 1, so CI fails
   the build on a perf regression. *)
let run_gate ~seed_path ~evals_per_sec ~hit_rate ~p50 ~p99 =
  let module Json = Ft_obs.Json in
  let contents =
    match
      let ic = open_in_bin seed_path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | s -> s
    | exception Sys_error msg ->
        Printf.eprintf "bench: cannot read gate seed: %s\n" msg;
        exit 1
  in
  let seed =
    match Json.of_string contents with
    | Ok j -> j
    | Error msg ->
        Printf.eprintf "bench: gate seed %s is not valid JSON: %s\n" seed_path
          msg;
        exit 1
  in
  let field obj name =
    match obj with Json.Obj fields -> List.assoc_opt name fields | _ -> None
  in
  let num section key =
    match Option.bind (field seed section) (fun sec -> field sec key) with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ ->
        Printf.eprintf "bench: gate seed %s lacks a numeric %s.%s\n" seed_path
          section key;
        exit 1
  in
  let seed_eps = num "tune" "evals_per_sec" in
  let seed_hit = num "tune" "cache_hit_rate" in
  let seed_p50 = num "loadgen" "latency_p50_s" in
  let seed_p99 = num "loadgen" "latency_p99_s" in
  note "gate: vs %s (min evals/s ratio %.2f, hit-rate slack %.2f, latency \
        slack %.1fx)"
    seed_path !gate_min_ratio !gate_hit_slack !gate_latency_slack;
  let failures = ref 0 in
  let check name ~ok ~current ~bound =
    if ok then note "gate: %-22s %12.4f  ok  (bound %.4f)" name current bound
    else begin
      incr failures;
      Printf.eprintf "bench: GATE FAIL %s: %.4f violates bound %.4f\n" name
        current bound
    end
  in
  check "evals_per_sec >="
    ~ok:(evals_per_sec >= !gate_min_ratio *. seed_eps)
    ~current:evals_per_sec
    ~bound:(!gate_min_ratio *. seed_eps);
  check "cache_hit_rate >="
    ~ok:(hit_rate >= seed_hit -. !gate_hit_slack)
    ~current:hit_rate
    ~bound:(seed_hit -. !gate_hit_slack);
  check "latency_p50_s <="
    ~ok:(p50 <= !gate_latency_slack *. seed_p50)
    ~current:p50
    ~bound:(!gate_latency_slack *. seed_p50);
  check "latency_p99_s <="
    ~ok:(p99 <= !gate_latency_slack *. seed_p99)
    ~current:p99
    ~bound:(!gate_latency_slack *. seed_p99);
  if !failures > 0 then begin
    Printf.eprintf "bench: perf gate FAILED (%d regression(s) vs %s)\n"
      !failures seed_path;
    exit 1
  end
  else note "gate: PASS (vs %s)" seed_path

let run_json_bench () =
  let module Json = Ft_obs.Json in
  let socket_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "funcy-bench-%d.sock" (Unix.getpid ()))
  in
  let daemon = fork_daemon ~socket_path in
  let platform = Ft_prog.Platform.Broadwell in
  let program = Option.get (Ft_suite.Suite.find "363.swim") in
  let input = Ft_suite.Suite.tuning_input platform program in
  (* 1a. sharded tune: coordinator/worker fleet.  Runs first — the
     sharded backend forks node processes, which is illegal once this
     process has spawned a domain (the solo tune may, with --jobs). *)
  let shard_nodes = 4 in
  let shard_result, shard_wall =
    let engine =
      Ft_engine.Engine.create ~backend:Ft_engine.Backend.Sharded
        ~nodes:shard_nodes ~policy:(policy ()) ()
    in
    let t0 = Unix.gettimeofday () in
    let session =
      Funcytuner.Tuner.make_session ~pool_size:150 ~engine ~platform ~program
        ~input ~seed:42 ()
    in
    let result = Funcytuner.Tuner.run_cfr session in
    (result, Unix.gettimeofday () -. t0)
  in
  note "shard (swim/bdw cfr, K=150, %d nodes): %.3f s wall, %d evaluations \
        (%.0f/s)"
    shard_nodes shard_wall shard_result.Funcytuner.Result.evaluations
    (float_of_int shard_result.Funcytuner.Result.evaluations /. shard_wall);
  (* 1b. solo tune: wall clock, evaluation rate, cache hit rate *)
  let engine =
    Ft_engine.Engine.create ~jobs:!jobs ~backend:!backend ~policy:(policy ()) ()
  in
  let t0 = Unix.gettimeofday () in
  let session =
    Funcytuner.Tuner.make_session ~pool_size:300 ~engine ~platform ~program
      ~input ~seed:42 ()
  in
  let result = Funcytuner.Tuner.run_cfr session in
  let tune_wall = Unix.gettimeofday () -. t0 in
  let snap = Ft_engine.Telemetry.snapshot (Ft_engine.Engine.telemetry engine) in
  let lookups =
    snap.Ft_engine.Telemetry.cache_hits + snap.Ft_engine.Telemetry.cache_misses
  in
  let hit_rate =
    if lookups = 0 then 0.0
    else float_of_int snap.Ft_engine.Telemetry.cache_hits /. float_of_int lookups
  in
  note "tune (swim/bdw cfr, K=300): %.3f s wall, %d evaluations (%.0f/s), \
        cache hit rate %.1f%%"
    tune_wall result.Funcytuner.Result.evaluations
    (float_of_int result.Funcytuner.Result.evaluations /. tune_wall)
    (100.0 *. hit_rate);
  (* 2. loadgen burst against the forked daemon *)
  (match Ft_serve.Client.ping ~retry_for:10.0 socket_path with
  | Ok () -> ()
  | Error f ->
      Printf.eprintf "bench: daemon never came up: %s\n"
        (Ft_serve.Client.failure_to_string f);
      exit 1);
  let lg = Ft_serve.Loadgen.run (Ft_serve.Loadgen.default_config ~socket_path) in
  print_string (Ft_serve.Loadgen.render lg);
  ignore (Ft_serve.Client.shutdown socket_path);
  ignore (Unix.waitpid [] daemon);
  if not (Ft_serve.Loadgen.passed lg) then begin
    Printf.eprintf "bench: loadgen reported protocol errors or divergence\n";
    exit 1
  end;
  let rev = git_rev () in
  let json =
    Json.Obj
      [
        ("schema", Json.String "funcytuner/bench/1");
        ("rev", Json.String rev);
        ("jobs", Json.Int !jobs);
        ( "tune",
          Json.Obj
            [
              ("benchmark", Json.String program.Ft_prog.Program.name);
              ("algorithm", Json.String "cfr");
              ("pool", Json.Int 300);
              ("wall_s", Json.Float tune_wall);
              ("evaluations", Json.Int result.Funcytuner.Result.evaluations);
              ( "evals_per_sec",
                Json.Float
                  (float_of_int result.Funcytuner.Result.evaluations
                  /. tune_wall) );
              ("cache_hit_rate", Json.Float hit_rate);
            ] );
        ( "shard",
          Json.Obj
            [
              ("benchmark", Json.String program.Ft_prog.Program.name);
              ("algorithm", Json.String "cfr");
              ("pool", Json.Int 150);
              ("nodes", Json.Int shard_nodes);
              ("wall_s", Json.Float shard_wall);
              ( "evaluations",
                Json.Int shard_result.Funcytuner.Result.evaluations );
              ( "evals_per_sec",
                Json.Float
                  (float_of_int shard_result.Funcytuner.Result.evaluations
                  /. shard_wall) );
            ] );
        ( "loadgen",
          Json.Obj
            [
              ("clients", Json.Int 200);
              ("concurrency", Json.Int 64);
              ("zipf_s", Json.Float 1.1);
              ("completed", Json.Int lg.Ft_serve.Loadgen.completed);
              ("fresh", Json.Int lg.Ft_serve.Loadgen.fresh);
              ("coalesced", Json.Int lg.Ft_serve.Loadgen.coalesced);
              ("cached", Json.Int lg.Ft_serve.Loadgen.cached);
              ("rejected", Json.Int lg.Ft_serve.Loadgen.rejected);
              ("errors", Json.Int lg.Ft_serve.Loadgen.errors);
              ("coalesce_rate", Json.Float lg.Ft_serve.Loadgen.coalesce_rate);
              ("wall_s", Json.Float lg.Ft_serve.Loadgen.wall_s);
              ("throughput_rps", Json.Float lg.Ft_serve.Loadgen.throughput);
              ("latency_p50_s", Json.Float lg.Ft_serve.Loadgen.latency_p50);
              ("latency_p90_s", Json.Float lg.Ft_serve.Loadgen.latency_p90);
              ("latency_p99_s", Json.Float lg.Ft_serve.Loadgen.latency_p99);
              ("latency_max_s", Json.Float lg.Ft_serve.Loadgen.latency_max);
            ] );
      ]
  in
  let path = Printf.sprintf "BENCH_%s.json" rev in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  note "wrote %s" path;
  match !gate_path with
  | None -> ()
  | Some seed_path ->
      run_gate ~seed_path
        ~evals_per_sec:
          (float_of_int result.Funcytuner.Result.evaluations /. tune_wall)
        ~hit_rate ~p50:lg.Ft_serve.Loadgen.latency_p50
        ~p99:lg.Ft_serve.Loadgen.latency_p99

(* --- adaptive: quality-vs-budget curves ------------------------------- *)

(* Merge the curves into BENCH_<rev>.json under the "adaptive" key so the
   snapshot taken by --json (which owns the file's other sections) and
   this experiment compose in either order. *)
let write_adaptive_json curves =
  let module Json = Ft_obs.Json in
  let rev = git_rev () in
  let path = Printf.sprintf "BENCH_%s.json" rev in
  let read_file p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let existing =
    if Sys.file_exists path then
      match Json.of_string (read_file path) with
      | Ok (Json.Obj fields) -> List.remove_assoc "adaptive" fields
      | Ok _ | Error _ -> []
    else []
  in
  let base =
    if existing = [] then
      [
        ("schema", Json.String "funcytuner/bench/1");
        ("rev", Json.String rev);
      ]
    else existing
  in
  let curve_json (c : Ablations.quality_curve) =
    Json.Obj
      [
        ("benchmark", Json.String c.Ablations.benchmark);
        ( "cfr",
          Json.Obj
            [
              ("speedup", Json.Float c.Ablations.cfr_speedup);
              ("evaluations", Json.Int c.Ablations.cfr_evaluations);
            ] );
        ( "curve",
          Json.List
            (List.map
               (fun (pt : Ablations.budget_point) ->
                 Json.Obj
                   [
                     ("budget", Json.Int pt.Ablations.budget);
                     ("evaluations", Json.Int pt.Ablations.evaluations);
                     ("speedup", Json.Float pt.Ablations.speedup);
                   ])
               c.Ablations.points) );
      ]
  in
  let json =
    Json.Obj (base @ [ ("adaptive", Json.List (List.map curve_json curves)) ])
  in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  note "wrote quality-vs-budget curves to %s" path

let run_adaptive () =
  banner "adaptive"
    "successive-halving CFR at K/16..K/2 measurement budgets vs full CFR";
  let curves = Ablations.quality_vs_budget (Lazy.force lab) in
  Table.print (Ablations.quality_vs_budget_table curves);
  write_adaptive_json curves

let experiments =
  [
    ("tab1", run_tab1);
    ("tab2", run_tab2);
    ("fig1", run_fig1);
    ("fig5a", fun () -> run_fig5 `A);
    ("fig5b", fun () -> run_fig5 `B);
    ("fig5c", fun () -> run_fig5 `C);
    ("fig6", run_fig6);
    ("fig7a", fun () -> run_fig7 true);
    ("fig7b", fun () -> run_fig7 false);
    ("fig8", run_fig8);
    ("fig9", run_fig9);
    ("tab3", run_tab3);
    ("ablations", run_ablations);
    ("adaptive", run_adaptive);
    ("faults", run_faults);
    ("micro", run_micro);
    ("engine", run_engine);
  ]

(* "engine" benchmarks the engine itself on its own sessions and "faults"
   sweeps fault rates on per-rate engines, so running every experiment
   does not include them by default. *)
let default_experiments =
  List.filter
    (fun (name, _) -> name <> "engine" && name <> "faults")
    experiments

let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "bench: %s\n" msg;
      exit 2)
    fmt

let int_flag ~flag ~min_v cell s =
  match int_of_string_opt s with
  | Some n when n >= min_v -> cell := n
  | _ -> usage_error "%s expects an integer >= %d, got '%s'" flag min_v s

let set_jobs = int_flag ~flag:"--jobs" ~min_v:1 jobs

let set_backend s =
  match Ft_engine.Backend.of_name s with
  | Some b -> backend := b
  | None -> usage_error "--backend expects 'domains' or 'processes', got '%s'" s

let set_fault_rate s =
  match float_of_string_opt s with
  | Some r when r >= 0.0 && r <= 1.0 -> fault_rate := r
  | _ -> usage_error "--fault-rate expects a float in [0,1], got '%s'" s

let set_timeout s =
  match float_of_string_opt s with
  | Some t when t > 0.0 -> timeout := Some t
  | _ -> usage_error "--timeout expects a positive float, got '%s'" s

let set_cache_format s =
  match Ft_engine.Cache.format_of_string s with
  | Some f -> cache_format := f
  | None -> usage_error "--cache-format expects 'text' or 'binary', got '%s'" s

let float_flag ~flag ~min_v cell s =
  match float_of_string_opt s with
  | Some f when f >= min_v -> cell := f
  | _ -> usage_error "%s expects a float >= %g, got '%s'" flag min_v s

let parse_args argv =
  let rec go names = function
    | [] -> List.rev names
    | "--stats" :: rest ->
        stats := true;
        go names rest
    | "--faults" :: rest ->
        faults := true;
        go names rest
    | "--json" :: rest ->
        json_out := true;
        go names rest
    | ("--jobs" | "-j") :: n :: rest ->
        set_jobs n;
        go names rest
    | "--backend" :: b :: rest ->
        set_backend b;
        go names rest
    | "--fault-rate" :: r :: rest ->
        set_fault_rate r;
        go names rest
    | "--fault-seed" :: n :: rest ->
        int_flag ~flag:"--fault-seed" ~min_v:0 fault_seed n;
        go names rest
    | "--timeout" :: s :: rest ->
        set_timeout s;
        go names rest
    | "--repeats" :: n :: rest ->
        int_flag ~flag:"--repeats" ~min_v:1 repeats n;
        go names rest
    | "--retries" :: n :: rest ->
        int_flag ~flag:"--retries" ~min_v:0 retries n;
        go names rest
    | "--checkpoint" :: path :: rest ->
        checkpoint := Some path;
        go names rest
    | "--cache-format" :: f :: rest ->
        set_cache_format f;
        go names rest
    | "--gate" :: path :: rest ->
        gate_path := Some path;
        go names rest
    | "--gate-min-ratio" :: r :: rest ->
        float_flag ~flag:"--gate-min-ratio" ~min_v:0.0 gate_min_ratio r;
        go names rest
    | "--gate-latency-slack" :: r :: rest ->
        float_flag ~flag:"--gate-latency-slack" ~min_v:1.0 gate_latency_slack r;
        go names rest
    | "--gate-hit-slack" :: r :: rest ->
        float_flag ~flag:"--gate-hit-slack" ~min_v:0.0 gate_hit_slack r;
        go names rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs="
      ->
        set_jobs (String.sub arg 7 (String.length arg - 7));
        go names rest
    | ("--fault-rate" | "--fault-seed" | "--timeout" | "--repeats"
      | "--retries" | "--checkpoint" | "--cache-format" | "--gate"
      | "--gate-min-ratio" | "--gate-latency-slack" | "--gate-hit-slack"
      | "--jobs" | "-j" | "--backend") :: [] ->
        usage_error "missing value for the last flag"
    | name :: rest -> go (name :: names) rest
  in
  go [] (List.tl (Array.to_list argv))

let () =
  Ft_shard.Shard.install ();
  let names = parse_args Sys.argv in
  if !json_out then begin
    if names <> [] then
      usage_error "--json takes no experiment names (it is its own suite)";
    run_json_bench ();
    exit 0
  end;
  let requested =
    match names with [] -> List.map fst default_experiments | names -> names in
  let t0 = Sys.time () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (available: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 2)
    requested;
  if Lazy.is_val lab then
    Ft_engine.Engine.flush_checkpoint (Lab.engine (Lazy.force lab));
  if !stats then begin
    print_newline ();
    print_string (Ft_engine.Telemetry.render (Lab.telemetry (Lazy.force lab)))
  end;
  Printf.printf "\n(total harness CPU time: %.1f s)\n" (Sys.time () -. t0)
