DUNE ?= dune
FUNCY = $(DUNE) exec --no-build bin/funcy.exe --

.PHONY: all build test smoke check clean

all: build

build:
	$(DUNE) build @all

test:
	$(DUNE) runtest

# Determinism smoke: the same tune run at --jobs 4 must produce output
# byte-identical to --jobs 1 (see DESIGN.md section 8).
smoke: build
	$(FUNCY) tune -b swim -a cfr -k 120 --jobs 1 > _build/smoke-j1.out
	$(FUNCY) tune -b swim -a cfr -k 120 --jobs 4 > _build/smoke-j4.out
	cmp _build/smoke-j1.out _build/smoke-j4.out
	@echo "smoke OK: --jobs 4 output bit-identical to --jobs 1"

check: build test smoke

clean:
	$(DUNE) clean
