DUNE ?= dune
FUNCY = $(DUNE) exec --no-build bin/funcy.exe --

.PHONY: all build test smoke smoke-faults smoke-trace smoke-procs \
        smoke-shard smoke-selfcheck smoke-adaptive smoke-serve smoke-recover golden \
        bench-gate coverage check clean

# Committed perf baseline the gate compares against (see bench-gate).
BENCH_SEED ?= BENCH_11e6649.json

all: build

build:
	$(DUNE) build @all

test:
	$(DUNE) runtest

# Determinism smoke: the same tune run at --jobs 4 must produce output
# byte-identical to --jobs 1 (see DESIGN.md section 8).
smoke: build
	$(FUNCY) tune -b swim -a cfr -k 120 --jobs 1 > _build/smoke-j1.out
	$(FUNCY) tune -b swim -a cfr -k 120 --jobs 4 > _build/smoke-j4.out
	cmp _build/smoke-j1.out _build/smoke-j4.out
	@echo "smoke OK: --jobs 4 output bit-identical to --jobs 1"

# Fault-layer smoke (see DESIGN.md section 9):
#   1. an armed fault model keeps --jobs 4 byte-identical to --jobs 1;
#   2. a run killed mid-search by --die-after resumes from its checkpoint
#      to output byte-identical to an uninterrupted run.
smoke-faults: build
	$(FUNCY) tune -b swim -a cfr -k 120 --faults --fault-seed 7 --jobs 1 \
	  > _build/smoke-faults-j1.out
	$(FUNCY) tune -b swim -a cfr -k 120 --faults --fault-seed 7 --jobs 4 \
	  > _build/smoke-faults-j4.out
	cmp _build/smoke-faults-j1.out _build/smoke-faults-j4.out
	rm -f _build/smoke-faults.snap _build/smoke-faults.snap.quarantine \
	  _build/smoke-faults.snap.commit
	$(FUNCY) tune -b swim -a cfr -k 120 --faults --fault-seed 7 \
	  --checkpoint _build/smoke-faults.snap --die-after 60 \
	  > /dev/null 2>/dev/null; test $$? -eq 99
	$(FUNCY) tune -b swim -a cfr -k 120 --faults --fault-seed 7 \
	  --checkpoint _build/smoke-faults.snap > _build/smoke-faults-resumed.out
	cmp _build/smoke-faults-resumed.out _build/smoke-faults-j1.out
	rm -f _build/smoke-faults.snap _build/smoke-faults.snap.quarantine \
	  _build/smoke-faults.snap.commit
	@echo "smoke-faults OK: fault schedule jobs-independent, kill-and-resume bit-identical"

# Tracing smoke (see DESIGN.md section 10):
#   1. a logical-clock trace of the same tune is byte-identical at
#      --jobs 1 and --jobs 4 (schedule-independent observability);
#   2. funcy report is a pure function of the trace file: rendering the
#      same trace twice produces identical bytes.
smoke-trace: build
	$(FUNCY) tune -b swim -a cfr -k 120 --jobs 1 \
	  --trace _build/smoke-trace-j1.jsonl --trace-clock logical > /dev/null
	$(FUNCY) tune -b swim -a cfr -k 120 --jobs 4 \
	  --trace _build/smoke-trace-j4.jsonl --trace-clock logical > /dev/null
	cmp _build/smoke-trace-j1.jsonl _build/smoke-trace-j4.jsonl
	$(FUNCY) report _build/smoke-trace-j1.jsonl > _build/smoke-trace-report1.out
	$(FUNCY) report _build/smoke-trace-j1.jsonl > _build/smoke-trace-report2.out
	cmp _build/smoke-trace-report1.out _build/smoke-trace-report2.out
	@echo "smoke-trace OK: logical trace bytes jobs-independent, report reproducible"

# Process-backend smoke (see DESIGN.md section 11):
#   1. --backend processes --jobs 4 tune output AND its logical trace are
#      byte-identical to --backend domains --jobs 1;
#   2. they stay byte-identical when a worker is SIGKILLed mid-search
#      (--kill-workers-after): the crashed job is retried bit-identically.
smoke-procs: build
	$(FUNCY) tune -b swim -a cfr -k 120 --jobs 1 \
	  --trace _build/smoke-procs-d.jsonl --trace-clock logical \
	  > _build/smoke-procs-d.out
	$(FUNCY) tune -b swim -a cfr -k 120 --jobs 4 --backend processes \
	  --trace _build/smoke-procs-p.jsonl --trace-clock logical \
	  > _build/smoke-procs-p.out
	cmp _build/smoke-procs-d.out _build/smoke-procs-p.out
	cmp _build/smoke-procs-d.jsonl _build/smoke-procs-p.jsonl
	$(FUNCY) tune -b swim -a cfr -k 120 --jobs 4 --backend processes \
	  --kill-workers-after 3 \
	  --trace _build/smoke-procs-k.jsonl --trace-clock logical \
	  > _build/smoke-procs-k.out
	cmp _build/smoke-procs-d.out _build/smoke-procs-k.out
	cmp _build/smoke-procs-d.jsonl _build/smoke-procs-k.jsonl
	@echo "smoke-procs OK: processes backend byte-identical to domains, even under worker kills"

# Sharded-backend smoke (see DESIGN.md section 17):
#   1. --backend sharded --nodes 4 tune output AND its logical trace are
#      byte-identical to --backend domains --jobs 4 (itself already
#      checked against --jobs 1 by `smoke`);
#   2. they stay byte-identical when node 0 is SIGKILLed mid-search
#      (--kill-node-after): its shard migrates by work stealing and the
#      in-flight job retries bit-identically.
smoke-shard: build
	$(FUNCY) tune -b swim -a cfr -k 120 --jobs 4 \
	  --trace _build/smoke-shard-d.jsonl --trace-clock logical \
	  > _build/smoke-shard-d.out
	$(FUNCY) tune -b swim -a cfr -k 120 --backend sharded --nodes 4 \
	  --trace _build/smoke-shard-s.jsonl --trace-clock logical \
	  > _build/smoke-shard-s.out
	cmp _build/smoke-shard-d.out _build/smoke-shard-s.out
	cmp _build/smoke-shard-d.jsonl _build/smoke-shard-s.jsonl
	$(FUNCY) tune -b swim -a cfr -k 120 --backend sharded --nodes 4 \
	  --kill-node-after 3 \
	  --trace _build/smoke-shard-k.jsonl --trace-clock logical \
	  > _build/smoke-shard-k.out
	cmp _build/smoke-shard-d.out _build/smoke-shard-k.out
	cmp _build/smoke-shard-d.jsonl _build/smoke-shard-k.jsonl
	@echo "smoke-shard OK: sharded backend byte-identical to domains, even under node kills"

# Checkpoint/resume equivalence oracle (see DESIGN.md section 12): for
# each algorithm, run uninterrupted, then kill-and-resume at several
# evaluation boundaries, and require byte-identical results, caches,
# quarantines and normalized logical traces — on both backends, with the
# fault model armed on the processes leg.
smoke-selfcheck: build
	$(FUNCY) selfcheck -b swim -k 60 --jobs 2
	$(FUNCY) selfcheck -b swim -k 60 --jobs 4 --backend processes \
	  --faults --fault-seed 7
	@echo "smoke-selfcheck OK: kill-and-resume equivalent to uninterrupted runs"

# Adaptive-allocation smoke (see DESIGN.md section 15):
#   1. adaptive-sh output AND its logical trace (including the rung
#      open/close/promote/eliminate events) are byte-identical at
#      --jobs 1 and --jobs 4;
#   2. quality-vs-budget: at a quarter of CFR's measurement budget,
#      adaptive-sh lands within 2% of CFR's best time (speedups compare
#      as sh >= cfr / 1.02, same thing via T_O3/best);
#   3. the checkpoint/resume equivalence oracle passes for adaptive-sh.
smoke-adaptive: build
	$(FUNCY) tune -b swim -a adaptive-sh -k 120 --jobs 1 \
	  --trace _build/smoke-adaptive-j1.jsonl --trace-clock logical \
	  > _build/smoke-adaptive-j1.out
	$(FUNCY) tune -b swim -a adaptive-sh -k 120 --jobs 4 \
	  --trace _build/smoke-adaptive-j4.jsonl --trace-clock logical \
	  > _build/smoke-adaptive-j4.out
	cmp _build/smoke-adaptive-j1.out _build/smoke-adaptive-j4.out
	cmp _build/smoke-adaptive-j1.jsonl _build/smoke-adaptive-j4.jsonl
	grep -q rung_open _build/smoke-adaptive-j1.jsonl
	grep -q arm_elim _build/smoke-adaptive-j1.jsonl
	$(FUNCY) tune -b swim -a cfr -k 120 > _build/smoke-adaptive-cfr.out
	sh=`awk '/^CFR-SH: speedup/ {print $$3}' _build/smoke-adaptive-j1.out`; \
	  cfr=`awk '/^CFR: speedup/ {print $$3}' _build/smoke-adaptive-cfr.out`; \
	  awk -v sh=$$sh -v cfr=$$cfr 'BEGIN { \
	    printf "adaptive-sh speedup %s vs CFR %s\n", sh, cfr; \
	    exit !(sh + 0 >= cfr / 1.02) }'
	$(FUNCY) selfcheck -b swim -k 60 --jobs 2 -a adaptive-sh
	@echo "smoke-adaptive OK: quarter-budget quality held, traces jobs-independent, resume equivalent"

# Tuning-service smoke (see DESIGN.md section 13):
#   1. a daemon comes up and a served result is byte-identical to the
#      result block of a solo `funcy tune` with the same spec;
#   2. a zipfian loadgen burst completes with zero protocol errors and
#      zero byte divergence (loadgen exits 1 otherwise);
#   3. a protocol shutdown drains the daemon cleanly (exit 0), and
#      `funcy report` renders the server section from its trace.
smoke-serve: build
	rm -f _build/smoke-serve.sock
	$(FUNCY) serve -s _build/smoke-serve.sock --jobs 2 \
	  --trace _build/smoke-serve.jsonl > _build/smoke-serve-daemon.out \
	  2> _build/smoke-serve-daemon.err & echo $$! > _build/smoke-serve.pid
	$(FUNCY) client -s _build/smoke-serve.sock --wait 10 --quiet \
	  -b swim -a cfr --seed 42 -k 120 > _build/smoke-serve-client.out
	$(FUNCY) tune -b swim -a cfr --seed 42 -k 120 \
	  > _build/smoke-serve-solo.out
	sed -n '/^CFR: speedup/,$$p' _build/smoke-serve-solo.out \
	  > _build/smoke-serve-solo-block.out
	cmp _build/smoke-serve-client.out _build/smoke-serve-solo-block.out
	$(FUNCY) loadgen -s _build/smoke-serve.sock --clients 120 --zipf 1.1 \
	  > _build/smoke-serve-loadgen.out
	$(FUNCY) client -s _build/smoke-serve.sock --shutdown > /dev/null
	for i in `seq 1 100`; do \
	  kill -0 `cat _build/smoke-serve.pid` 2>/dev/null || break; sleep 0.1; done; \
	  ! kill -0 `cat _build/smoke-serve.pid` 2>/dev/null
	$(FUNCY) report _build/smoke-serve.jsonl | grep -q "Server requests"
	@echo "smoke-serve OK: served bytes = solo bytes, loadgen clean, drained on shutdown"

# Crash-recovery smoke (see DESIGN.md section 14): a supervised daemon
# with a durable journal SIGKILLs itself (chaos hook) after every 5th
# accepted request; a reconnecting zipfian loadgen burst must still
# complete every request with zero errors and zero byte divergence
# (loadgen exits 1 otherwise) while riding out the restarts, the
# daemon's counters must admit to the restarts it survived, and a
# protocol shutdown must drain the final generation cleanly.
smoke-recover: build
	rm -rf _build/smoke-recover && mkdir -p _build/smoke-recover
	$(FUNCY) serve -s _build/smoke-recover/sock \
	  --state-dir _build/smoke-recover/state --supervise \
	  --die-after-requests 5 --jobs 2 \
	  > _build/smoke-recover/daemon.out 2> _build/smoke-recover/daemon.err \
	  & echo $$! > _build/smoke-recover/pid
	$(FUNCY) loadgen -s _build/smoke-recover/sock --reconnect \
	  --clients 12 --concurrency 6 -k 60 --zipf 1.1 \
	  > _build/smoke-recover/loadgen.out
	grep -q "reconnects" _build/smoke-recover/loadgen.out
	$(FUNCY) client -s _build/smoke-recover/sock --stats \
	  > _build/smoke-recover/stats.out
	grep -Eq "restarts +[1-9]" _build/smoke-recover/stats.out
	$(FUNCY) client -s _build/smoke-recover/sock --shutdown > /dev/null
	for i in `seq 1 100`; do \
	  kill -0 `cat _build/smoke-recover/pid` 2>/dev/null || break; sleep 0.1; done; \
	  ! kill -0 `cat _build/smoke-recover/pid` 2>/dev/null
	@echo "smoke-recover OK: supervised restarts survived, loadgen consistent, drained cleanly"

# Perf regression gate (see DESIGN.md section 16): run the JSON bench
# suite and compare its headline metrics against the committed seed
# snapshot.  Solo-tune evals/sec must reach 1.3x the seed's; the cache
# hit rate may drop at most 0.05 absolute; loadgen p50/p99 latencies may
# grow at most 3x (latency tolerances are deliberately loose: CI boxes
# vary, while the throughput ratio is the contract this PR's hot-path
# work must hold).  Exits 1 on any regression.
bench-gate: build
	$(DUNE) exec --no-build bench/main.exe -- --json --jobs 4 \
	  --gate $(BENCH_SEED) --gate-min-ratio 1.3

# Line coverage of `dune runtest` via bisect_ppx, which must be installed
# (it is deliberately NOT a build dependency: the instrumentation stanzas
# are inert unless dune is passed --instrument-with bisect_ppx, so default
# builds cost nothing).  See test/README.md.
coverage:
	@command -v ocamlfind >/dev/null 2>&1 && ocamlfind query bisect_ppx \
	  >/dev/null 2>&1 || \
	  { echo "coverage: bisect_ppx is not installed (opam install bisect_ppx)"; \
	    exit 1; }
	rm -rf _coverage
	BISECT_FILE=$(CURDIR)/_coverage/bisect $(DUNE) runtest --force \
	  --instrument-with bisect_ppx
	bisect-ppx-report html --coverage-path _coverage -o _coverage/html
	bisect-ppx-report summary --coverage-path _coverage

# Regenerate the golden CSV fixtures compared byte-for-byte by
# `dune runtest` (test/suite_golden.ml).  Commit the diff deliberately:
# a golden change means the search's observable behaviour changed.
golden: build
	$(FUNCY) experiment fig5c fig7a -k 12 --csv-dir test/golden

check: build test smoke smoke-faults smoke-trace smoke-procs smoke-shard \
       smoke-selfcheck smoke-adaptive smoke-serve smoke-recover

clean:
	$(DUNE) clean
