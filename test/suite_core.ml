(* Tests for the funcytuner core: contexts, the per-loop collection, and
   the four §2.2 search algorithms on reduced budgets. *)

open Ft_prog
module Context = Funcytuner.Context
module Collection = Funcytuner.Collection
module Result = Funcytuner.Result
module Tuner = Funcytuner.Tuner
module Cfr = Funcytuner.Cfr
module Outline = Ft_outline.Outline
module Toolchain = Ft_machine.Toolchain

let program = Ft_suite.Cloverleaf.program
let platform = Platform.Broadwell
let input = Ft_suite.Suite.tuning_input platform program

(* One shared small session: profiling + outlining + a 120-CV collection. *)
let session =
  lazy
    (Tuner.make_session ~pool_size:120 ~platform ~program ~input ~seed:1234 ())

let collection () = Lazy.force (Lazy.force session).Tuner.collection

(* --- Context -------------------------------------------------------------- *)

let test_context_pool_and_baseline () =
  let ctx = (Lazy.force session).Tuner.ctx in
  Alcotest.(check int) "pool size" 120 (Array.length ctx.Context.pool);
  Alcotest.(check bool) "baseline positive" true (ctx.Context.baseline_s > 0.0);
  Alcotest.(check (float 1e-9)) "speedup identity" 1.0
    (Context.speedup ctx ctx.Context.baseline_s)

let test_context_pool_deterministic () =
  let make () =
    Context.make ~pool_size:10 ~toolchain:(Toolchain.make platform) ~program
      ~input ~seed:99 ()
  in
  let a = make () and b = make () in
  Array.iteri
    (fun i cv ->
      Alcotest.(check bool) "same pool for same seed" true
        (Ft_flags.Cv.equal cv b.Context.pool.(i)))
    a.Context.pool

let test_context_evaluate_vs_measure () =
  let ctx = (Lazy.force session).Tuner.ctx in
  let truth = Context.evaluate_uniform ctx Ft_flags.Cv.o3 in
  let noisy =
    Context.measure_uniform ctx ~rng:(Ft_util.Rng.create 5) Ft_flags.Cv.o3
  in
  Alcotest.(check bool) "noise small" true
    (Float.abs (noisy -. truth) /. truth < 0.05);
  Alcotest.(check (float 1e-9)) "evaluate matches baseline" ctx.Context.baseline_s truth

(* --- Collection ------------------------------------------------------------ *)

let test_collection_dimensions () =
  let c = collection () in
  let modules = Array.length c.Collection.modules in
  Alcotest.(check int) "rows = J+1"
    (Outline.module_count (Lazy.force session).Tuner.outline)
    modules;
  Array.iter
    (fun row -> Alcotest.(check int) "K columns" 120 (Array.length row))
    c.Collection.times;
  Alcotest.(check int) "K totals" 120 (Array.length c.Collection.totals)

let test_collection_times_positive () =
  let c = collection () in
  Array.iter
    (Array.iter (fun t ->
         Alcotest.(check bool) "T[j][k] >= 0" true (t >= 0.0)))
    c.Collection.times

let test_collection_rows_sum_to_totals () =
  (* Residual is derived by subtraction, so each column must re-add to the
     end-to-end time. *)
  let c = collection () in
  Array.iteri
    (fun k total ->
      let sum = ref 0.0 in
      Array.iter (fun row -> sum := !sum +. row.(k)) c.Collection.times;
      Alcotest.(check (float 1e-6)) "column adds up" total !sum)
    c.Collection.totals

let test_collection_best_cv () =
  let c = collection () in
  let name = c.Collection.modules.(1) in
  let best = Collection.best_cv_for c name in
  let row = c.Collection.times.(1) in
  let k = Ft_util.Stats.argmin row in
  Alcotest.(check bool) "argmin CV returned" true
    (Ft_flags.Cv.equal best c.Collection.pool.(k))

let test_collection_top_k_subset_ordered () =
  let c = collection () in
  let name = c.Collection.modules.(2) in
  let row = c.Collection.times.(2) in
  let top = Collection.top_k_for c name 10 in
  Alcotest.(check int) "10 CVs" 10 (Array.length top);
  Alcotest.(check bool) "head is the best" true
    (Ft_flags.Cv.equal top.(0) (Collection.best_cv_for c name));
  (* Every returned CV's collected time is within the 10 smallest. *)
  let sorted = Array.copy row in
  Array.sort compare sorted;
  let threshold = sorted.(9) in
  Array.iter
    (fun cv ->
      let k = ref (-1) in
      Array.iteri
        (fun i p -> if Ft_flags.Cv.equal p cv && !k < 0 then k := i)
        c.Collection.pool;
      Alcotest.(check bool) "within top-10 times" true
        (row.(!k) <= threshold +. 1e-12))
    top

let test_module_index () =
  let c = collection () in
  Alcotest.(check bool) "residual at 0" true
    (Collection.module_index c Outline.residual_module = Some 0);
  Alcotest.(check bool) "missing module" true
    (Collection.module_index c "nope" = None)

(* --- Result helpers --------------------------------------------------------- *)

let test_best_so_far () =
  Alcotest.(check (list (float 1e-9))) "prefix minimum"
    [ 5.0; 3.0; 3.0; 1.0; 1.0 ]
    (Result.best_so_far [ 5.0; 3.0; 4.0; 1.0; 2.0 ]);
  Alcotest.(check (list (float 1e-9))) "empty" [] (Result.best_so_far [])

let test_evaluations_to_best () =
  let r =
    Result.make ~algorithm:"t" ~configuration:(Result.Whole_program Ft_flags.Cv.o3)
      ~baseline_s:10.0 ~evaluations:5
      ~trace:[ 5.0; 3.0; 3.0; 1.0; 1.0 ]
      ~best_seconds:1.0
  in
  Alcotest.(check int) "first eval within 0.5% of final" 4
    (Result.evaluations_to_best r)

(* --- algorithms -------------------------------------------------------------- *)

let test_random_search () =
  let ctx = (Lazy.force session).Tuner.ctx in
  let r = Funcytuner.Random_search.run ctx in
  Alcotest.(check string) "name" "Random" r.Result.algorithm;
  Alcotest.(check int) "K evaluations" 120 r.Result.evaluations;
  Alcotest.(check int) "trace length" 120 (List.length r.Result.trace);
  Alcotest.(check bool) "speedup positive" true (r.Result.speedup > 0.0);
  (match r.Result.configuration with
  | Result.Whole_program _ -> ()
  | Result.Per_module _ -> Alcotest.fail "random is per-program");
  (* With 120 candidates + the implicit O3 point in the space, random
     search should not end up slower than ~5% below baseline. *)
  Alcotest.(check bool) "sane speedup" true (r.Result.speedup > 0.9)

let test_fr_per_module () =
  let s = Lazy.force session in
  let r = Funcytuner.Fr.run s.Tuner.ctx s.Tuner.outline in
  Alcotest.(check string) "name" "FR" r.Result.algorithm;
  match r.Result.configuration with
  | Result.Per_module assignment ->
      Alcotest.(check int) "one CV per module"
        (Outline.module_count s.Tuner.outline)
        (List.length assignment)
  | Result.Whole_program _ -> Alcotest.fail "FR is per-module"

let test_greedy () =
  let s = Lazy.force session in
  let g = Funcytuner.Greedy.run s.Tuner.ctx (collection ()) in
  Alcotest.(check int) "one realized measurement" 1
    g.Funcytuner.Greedy.realized.Result.evaluations;
  Alcotest.(check bool) "independent bound beats realized" true
    (g.Funcytuner.Greedy.independent_speedup
    > g.Funcytuner.Greedy.realized.Result.speedup);
  (* The independent sum uses per-module minima, so it must be at least
     the speedup of the best single uniform build. *)
  let best_uniform =
    Array.fold_left Float.min infinity (collection ()).Collection.totals
  in
  Alcotest.(check bool) "independent >= best uniform" true
    (g.Funcytuner.Greedy.independent_seconds <= best_uniform +. 1e-9)

let test_cfr () =
  let s = Lazy.force session in
  let r = Cfr.run ~top_x:10 s.Tuner.ctx (collection ()) in
  Alcotest.(check string) "name" "CFR" r.Result.algorithm;
  Alcotest.(check int) "K evaluations" 120 r.Result.evaluations;
  match r.Result.configuration with
  | Result.Per_module assignment ->
      (* Every assigned CV must come from its module's pruned pool. *)
      let pools = Cfr.pruned_pools ~top_x:10 (collection ()) in
      List.iter
        (fun (m, cv) ->
          let pool = List.assoc m pools in
          Alcotest.(check bool)
            ("CV for " ^ m ^ " is inside its pruned space")
            true
            (Array.exists (Ft_flags.Cv.equal cv) pool))
        assignment
  | Result.Whole_program _ -> Alcotest.fail "CFR is per-module"

let test_cfr_pruned_pools_sizes () =
  let pools = Cfr.pruned_pools ~top_x:7 (collection ()) in
  List.iter
    (fun (_, pool) -> Alcotest.(check int) "top-X width" 7 (Array.length pool))
    pools

let test_pipeline_determinism () =
  let run () =
    let s =
      Tuner.make_session ~pool_size:40 ~platform ~program ~input ~seed:77 ()
    in
    (Tuner.run_cfr ~top_x:5 s).Result.speedup
  in
  Alcotest.(check (float 1e-12)) "same seed, same CFR result" (run ()) (run ())

let test_seed_changes_results () =
  let run seed =
    let s =
      Tuner.make_session ~pool_size:40 ~platform ~program ~input ~seed ()
    in
    (Tuner.run_cfr ~top_x:5 s).Result.speedup
  in
  Alcotest.(check bool) "different seeds explore differently" true
    (run 7 <> run 8)

let test_evaluate_configuration_other_input () =
  let s = Lazy.force session in
  let cfr = Tuner.run_cfr ~top_x:10 s in
  let small = Ft_suite.Suite.small_input program in
  let t =
    Tuner.evaluate_configuration s ~input:small ~rng:(Ft_util.Rng.create 3)
      cfr.Result.configuration
  in
  let o3 = Tuner.o3_seconds s ~input:small in
  Alcotest.(check bool) "re-evaluation runs" true (t > 0.0);
  Alcotest.(check bool) "tuned result in a sane band" true
    (o3 /. t > 0.8 && o3 /. t < 2.0)

let test_adaptive_cfr () =
  let s = Lazy.force session in
  let r =
    Funcytuner.Adaptive.run ~top_x:10 ~patience:20 s.Tuner.ctx (collection ())
  in
  Alcotest.(check string) "name" "CFR-adaptive" r.Result.algorithm;
  (* +1: the final confirmation of the winner counts as budget spend. *)
  Alcotest.(check bool) "stops within the budget" true
    (r.Result.evaluations <= 121);
  Alcotest.(check bool) "spent at least patience evaluations" true
    (r.Result.evaluations >= 21);
  Alcotest.(check int) "trace is the loop spend, evaluations one more"
    r.Result.evaluations
    (List.length r.Result.trace + 1);
  (* The adaptive variant should land close to full CFR. *)
  let full = Funcytuner.Cfr.run ~top_x:10 s.Tuner.ctx (collection ()) in
  Alcotest.(check bool)
    (Printf.sprintf "within 5%% of full CFR (%.3f vs %.3f)" r.Result.speedup
       full.Result.speedup)
    true
    (r.Result.speedup > full.Result.speedup -. 0.05)

let test_adaptive_patience_controls_budget () =
  let s = Lazy.force session in
  let short =
    Funcytuner.Adaptive.run ~top_x:10 ~patience:5 s.Tuner.ctx (collection ())
  in
  let long =
    Funcytuner.Adaptive.run ~top_x:10 ~patience:60 s.Tuner.ctx (collection ())
  in
  Alcotest.(check bool) "more patience, at least as many evaluations" true
    (long.Result.evaluations >= short.Result.evaluations)

(* --- Allocator: the pure budget allocator's laws --------------------------- *)

module Allocator = Funcytuner.Allocator

(* Drive an allocator to completion on a synthetic score function,
   calling [check] after every observation.  Returns the final state and
   every pull issued, in order. *)
let drive ?(check = fun _ -> ()) ~score alloc =
  let rec go alloc acc =
    let pulls, awaiting = Allocator.next_batch alloc in
    match pulls with
    | [] -> (alloc, List.rev acc)
    | _ ->
        let alloc = Allocator.observe awaiting (List.map score pulls) in
        check alloc;
        go alloc (List.rev_append pulls acc)
  in
  go alloc []

(* A deterministic pure score: a hash of (seed, arm, repeat). *)
let synth_score seed { Allocator.arm; repeat } =
  let rng =
    Ft_util.Rng.of_label
      (Ft_util.Rng.create seed)
      (Printf.sprintf "%d:%d" arm repeat)
  in
  Ft_util.Rng.float rng 10.0

let alloc_case_arb =
  QCheck.make
    ~print:(fun (sh, arms, slack, p, seed) ->
      Printf.sprintf "sh=%b arms=%d slack=%d p=%d seed=%d" sh arms slack p
        seed)
    QCheck.Gen.(
      map
        (fun ((sh, arms), (slack, (p, seed))) -> (sh, arms, slack, p, seed))
        (pair
           (pair bool (int_range 1 12))
           (pair (int_range 0 60) (pair (int_range 2 4) (int_bound 10_000)))))

let prop_allocator_laws =
  QCheck.Test.make ~count:300
    ~name:
      "allocator laws: budget conservation, fair first look, monotone \
       promotion, replay determinism"
    alloc_case_arb
    (fun (sh, arms, slack, p, seed) ->
      let budget = arms + slack in
      let policy =
        if sh then Allocator.Successive_halving { eta = p }
        else Allocator.Ucb { exploration = 0.5; batch = p }
      in
      let make () = Allocator.create ~policy ~arms ~budget () in
      let score = synth_score seed in
      let fail fmt = QCheck.Test.fail_reportf fmt in
      let seen = ref 0 in
      let elim_seen = ref false in
      let check alloc =
        if Allocator.spent alloc > budget then
          fail "spent %d overshoots budget %d" (Allocator.spent alloc) budget;
        let ds = Allocator.decisions alloc in
        let fresh = List.filteri (fun i _ -> i >= !seen) ds in
        seen := List.length ds;
        let means = Allocator.means alloc in
        (* Fair first look: no elimination before every arm has a pull. *)
        (if (not !elim_seen)
            && List.exists
                 (function Allocator.Eliminated _ -> true | _ -> false)
                 fresh
         then begin
           elim_seen := true;
           if not (Array.for_all (fun c -> c >= 1) (Allocator.counts alloc))
           then fail "elimination before every arm was pulled"
         end);
        (* Promotion monotonicity, on the rung that just closed: no
           eliminated arm may have a strictly better mean than any
           promoted arm. *)
        let promoted =
          List.filter_map
            (function Allocator.Promoted { arm; _ } -> Some arm | _ -> None)
            fresh
        and eliminated =
          List.filter_map
            (function
              | Allocator.Eliminated { arm; _ } -> Some arm | _ -> None)
            fresh
        in
        List.iter
          (fun e ->
            List.iter
              (fun p ->
                if Float.compare means.(e) means.(p) < 0 then
                  fail "eliminated arm %d (mean %f) beats promoted %d (%f)" e
                    means.(e) p means.(p))
              promoted)
          eliminated
      in
      let final, pulls = drive ~check ~score (make ()) in
      if not (Allocator.finished final) then fail "never finished";
      (* Conservation is exact on completion. *)
      if Allocator.spent final <> budget then
        fail "spent %d <> budget %d on completion" (Allocator.spent final)
          budget;
      if List.length pulls <> budget then fail "pull log disagrees with spend";
      (* Replay determinism: identical inputs, identical decisions and
         pull sequence. *)
      let final', pulls' = drive ~score (make ()) in
      Allocator.decisions final = Allocator.decisions final' && pulls = pulls')

let test_allocator_rejects () =
  let reject name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ " accepted")
  in
  reject "arms=0" (fun () -> Allocator.create ~arms:0 ~budget:5 ());
  reject "budget<arms" (fun () -> Allocator.create ~arms:5 ~budget:4 ());
  reject "eta=1" (fun () ->
      Allocator.create
        ~policy:(Allocator.Successive_halving { eta = 1 })
        ~arms:2 ~budget:4 ());
  reject "short priors" (fun () ->
      Allocator.create ~priors:[| Some 1.0 |] ~arms:2 ~budget:4 ());
  reject "nan prior" (fun () ->
      Allocator.create ~priors:[| Some Float.nan; None |] ~arms:2 ~budget:4 ());
  let a = Allocator.create ~arms:2 ~budget:4 () in
  let pulls, awaiting = Allocator.next_batch a in
  reject "double next_batch" (fun () -> Allocator.next_batch awaiting);
  reject "observe without batch" (fun () -> Allocator.observe a [ 1.0 ]);
  reject "observe length mismatch" (fun () ->
      Allocator.observe awaiting (1.0 :: List.map (fun _ -> 1.0) pulls));
  reject "observe NaN" (fun () ->
      Allocator.observe awaiting (List.map (fun _ -> Float.nan) pulls))

let test_allocator_prior_bias () =
  (* Two arms, equal observed scores: without priors the index tie-break
     promotes arm 0; a bad prior pseudo-score on arm 0 flips it. *)
  let promoted_of priors =
    let a =
      Allocator.create
        ~policy:(Allocator.Successive_halving { eta = 2 })
        ?priors ~arms:2 ~budget:3 ()
    in
    let final, _ = drive ~score:(fun _ -> 5.0) a in
    List.filter_map
      (function
        | Allocator.Promoted { rung = 0; arm } -> Some arm | _ -> None)
      (Allocator.decisions final)
  in
  Alcotest.(check (list int)) "tie goes to arm 0" [ 0 ] (promoted_of None);
  Alcotest.(check (list int)) "a bad prior on arm 0 flips the tie" [ 1 ]
    (promoted_of (Some [| Some 10.0; None |]))

let test_allocator_ucb_exploits () =
  (* A clearly best arm must absorb most of a UCB budget. *)
  let a =
    Allocator.create
      ~policy:(Allocator.Ucb { exploration = 0.1; batch = 2 })
      ~arms:3 ~budget:30 ()
  in
  let score { Allocator.arm; _ } = if arm = 0 then 1.0 else 5.0 in
  let final, _ = drive ~score a in
  let counts = Allocator.counts final in
  Alcotest.(check bool)
    (Printf.sprintf "best arm dominates (%d/%d/%d)" counts.(0) counts.(1)
       counts.(2))
    true
    (counts.(0) > counts.(1) + counts.(2));
  Alcotest.(check (option int)) "best is the cheap arm" (Some 0)
    (Allocator.best final)

(* --- Adaptive_sh: successive-halving CFR ----------------------------------- *)

module Adaptive_sh = Funcytuner.Adaptive_sh

let test_adaptive_sh_basic () =
  let s = Lazy.force session in
  let r = Adaptive_sh.run s.Tuner.ctx (collection ()) in
  let budget = Adaptive_sh.default_budget s.Tuner.ctx in
  Alcotest.(check string) "name" "CFR-SH" r.Result.algorithm;
  Alcotest.(check int) "evaluations = budget + final confirmation"
    (budget + 1) r.Result.evaluations;
  Alcotest.(check int) "trace is the allocator spend" budget
    (List.length r.Result.trace);
  Alcotest.(check bool) "positive speedup" true (r.Result.speedup > 0.0);
  let r' = Adaptive_sh.run s.Tuner.ctx (collection ()) in
  Alcotest.(check (float 0.0)) "deterministic" r.Result.speedup
    r'.Result.speedup

let test_adaptive_sh_quality_vs_budget () =
  (* The ROADMAP target, enforced: at a quarter of CFR's evaluation
     budget, adaptive-sh must come within 2% of CFR's best time. *)
  let s = Lazy.force session in
  let cfr = Tuner.run_cfr s in
  let sh = Adaptive_sh.run s.Tuner.ctx (collection ()) in
  Alcotest.(check bool)
    (Printf.sprintf "quarter budget (%d vs %d)" sh.Result.evaluations
       cfr.Result.evaluations)
    true
    (sh.Result.evaluations <= (cfr.Result.evaluations / 4) + 1);
  Alcotest.(check bool)
    (Printf.sprintf "within 2%% of CFR's best time (%.4f vs %.4f)"
       sh.Result.best_seconds cfr.Result.best_seconds)
    true
    (sh.Result.best_seconds <= cfr.Result.best_seconds *. 1.02)

let test_adaptive_sh_trace_events () =
  (* The rung lifecycle is visible as typed events, under the logical
     clock, and survives selfcheck normalization. *)
  let trace = Ft_obs.Trace.create ~clock:Ft_obs.Trace.Logical () in
  let engine = Ft_engine.Engine.create ~trace () in
  let s =
    Tuner.make_session ~pool_size:40 ~engine ~platform ~program ~input
      ~seed:7 ()
  in
  let r = Adaptive_sh.run s.Tuner.ctx (Lazy.force s.Tuner.collection) in
  Alcotest.(check bool) "ran" true (r.Result.evaluations > 0);
  let events =
    List.map (fun st -> st.Ft_obs.Trace.event) (Ft_obs.Trace.events trace)
  in
  let count p = List.length (List.filter p events) in
  let opened =
    count (function Ft_obs.Event.Rung_opened _ -> true | _ -> false)
  and closed =
    count (function Ft_obs.Event.Rung_closed _ -> true | _ -> false)
  and promoted =
    count (function Ft_obs.Event.Arm_promoted _ -> true | _ -> false)
  and eliminated =
    count (function Ft_obs.Event.Arm_eliminated _ -> true | _ -> false)
  in
  Alcotest.(check bool) "rungs opened" true (opened >= 2);
  Alcotest.(check int) "every rung closed" opened closed;
  Alcotest.(check bool) "promotions and eliminations recorded" true
    (promoted > 0 && eliminated > 0);
  let normalized = Ft_obs.Trace.normalized_lines trace in
  Alcotest.(check bool) "rung events survive normalization" true
    (List.exists (fun l -> Test_helpers.contains l "rung_open") normalized
    && List.exists (fun l -> Test_helpers.contains l "arm_elim") normalized)

let test_adaptive_sh_warm_start () =
  (* A warm cache from a previous identical run pre-scores every arm;
     the warm search must still be valid and deterministic. *)
  let cache = Ft_engine.Cache.create () in
  let run ?warm ~engine () =
    let s =
      Tuner.make_session ~pool_size:40 ~engine ~platform ~program ~input
        ~seed:5 ()
    in
    Adaptive_sh.run ?warm s.Tuner.ctx (Lazy.force s.Tuner.collection)
  in
  let cold = run ~engine:(Ft_engine.Engine.create ~cache ()) () in
  let warm () = run ~warm:cache ~engine:(Ft_engine.Engine.create ()) () in
  let w1 = warm () and w2 = warm () in
  Alcotest.(check string) "same algorithm" cold.Result.algorithm
    w1.Result.algorithm;
  Alcotest.(check int) "same budget spent" cold.Result.evaluations
    w1.Result.evaluations;
  Alcotest.(check (float 0.0)) "warm start deterministic" w1.Result.speedup
    w2.Result.speedup

let suite =
  ( "core",
    [
      Alcotest.test_case "context basics" `Quick test_context_pool_and_baseline;
      Alcotest.test_case "context determinism" `Quick
        test_context_pool_deterministic;
      Alcotest.test_case "evaluate vs measure" `Quick
        test_context_evaluate_vs_measure;
      Alcotest.test_case "collection dimensions" `Quick
        test_collection_dimensions;
      Alcotest.test_case "collection positivity" `Quick
        test_collection_times_positive;
      Alcotest.test_case "collection additivity" `Quick
        test_collection_rows_sum_to_totals;
      Alcotest.test_case "best CV per module" `Quick test_collection_best_cv;
      Alcotest.test_case "top-k pruning" `Quick
        test_collection_top_k_subset_ordered;
      Alcotest.test_case "module index" `Quick test_module_index;
      Alcotest.test_case "best-so-far traces" `Quick test_best_so_far;
      Alcotest.test_case "convergence metric" `Quick test_evaluations_to_best;
      Alcotest.test_case "random search" `Quick test_random_search;
      Alcotest.test_case "FR" `Quick test_fr_per_module;
      Alcotest.test_case "greedy + independence bound" `Quick test_greedy;
      Alcotest.test_case "CFR focusing" `Quick test_cfr;
      Alcotest.test_case "pruned pool widths" `Quick
        test_cfr_pruned_pools_sizes;
      Alcotest.test_case "pipeline determinism" `Quick
        test_pipeline_determinism;
      Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_results;
      Alcotest.test_case "generalization evaluation" `Quick
        test_evaluate_configuration_other_input;
      Alcotest.test_case "adaptive CFR" `Quick test_adaptive_cfr;
      Alcotest.test_case "adaptive patience" `Quick
        test_adaptive_patience_controls_budget;
      QCheck_alcotest.to_alcotest prop_allocator_laws;
      Alcotest.test_case "allocator rejects" `Quick test_allocator_rejects;
      Alcotest.test_case "allocator prior bias" `Quick
        test_allocator_prior_bias;
      Alcotest.test_case "allocator UCB exploits" `Quick
        test_allocator_ucb_exploits;
      Alcotest.test_case "adaptive-sh basics" `Quick test_adaptive_sh_basic;
      Alcotest.test_case "adaptive-sh quality at quarter budget" `Quick
        test_adaptive_sh_quality_vs_budget;
      Alcotest.test_case "adaptive-sh rung trace events" `Quick
        test_adaptive_sh_trace_events;
      Alcotest.test_case "adaptive-sh warm start" `Quick
        test_adaptive_sh_warm_start;
    ] )
