(* Tests for ft_util: the PRNG, statistics, and table rendering. *)

module Rng = Ft_util.Rng
module Stats = Ft_util.Stats
module Table = Ft_util.Table

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* --- Rng -------------------------------------------------------------- *)

let test_determinism () =
  let a = Rng.create 1 and b = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 2)

let test_copy_independent () =
  let a = Rng.create 3 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a)
    (Rng.int64 b)

let test_split_independent () =
  let a = Rng.create 4 in
  let child = Rng.split a in
  let xs = List.init 32 (fun _ -> Rng.int a 1000) in
  let ys = List.init 32 (fun _ -> Rng.int child 1000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_label_stability () =
  let a = Rng.create 5 and b = Rng.create 5 in
  let x = Rng.int64 (Rng.of_label a "alpha") in
  let y = Rng.int64 (Rng.of_label b "alpha") in
  let z = Rng.int64 (Rng.of_label b "beta") in
  Alcotest.(check int64) "same label same stream" x y;
  Alcotest.(check bool) "different labels differ" true (x <> z)

let test_label_does_not_advance () =
  let a = Rng.create 6 and b = Rng.create 6 in
  ignore (Rng.of_label a "whatever");
  Alcotest.(check int64) "of_label leaves parent intact" (Rng.int64 a)
    (Rng.int64 b)

let test_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in [0,13)" true (v >= 0 && v < 13)
  done;
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_int_covers_domain () =
  let rng = Rng.create 8 in
  let seen = Array.make 7 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 7) <- true
  done;
  Alcotest.(check bool) "all residues reached" true
    (Array.for_all (fun x -> x) seen)

let test_float_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_gauss_moments () =
  let rng = Rng.create 10 in
  let n = 20_000 in
  let xs = List.init n (fun _ -> Rng.gauss rng ~mu:3.0 ~sigma:2.0) in
  check_close 0.1 "mean" 3.0 (Stats.mean xs);
  check_close 0.1 "std" 2.0 (Stats.stddev xs)

let test_choose () =
  let rng = Rng.create 11 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (Array.mem (Rng.choose rng a) a)
  done;
  Alcotest.check_raises "empty array"
    (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose rng [||]))

let test_shuffle_permutation () =
  let rng = Rng.create 12 in
  let a = Array.init 20 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation"
    (Array.init 20 (fun i -> i))
    sorted

let test_sample_without_replacement () =
  let rng = Rng.create 13 in
  let s = Rng.sample_without_replacement rng 5 10 in
  Alcotest.(check int) "5 draws" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare s));
  List.iter
    (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 10))
    s;
  Alcotest.check_raises "k > n rejected"
    (Invalid_argument "Rng.sample_without_replacement: need 0 <= k <= n")
    (fun () -> ignore (Rng.sample_without_replacement rng 11 10))

let test_hash_string_stable () =
  Alcotest.(check int) "deterministic" (Rng.hash_string "funcytuner")
    (Rng.hash_string "funcytuner");
  Alcotest.(check bool) "sensitive" true
    (Rng.hash_string "a" <> Rng.hash_string "b");
  Alcotest.(check bool) "non-negative" true (Rng.hash_string "x" >= 0)

(* --- Stats ------------------------------------------------------------ *)

let test_mean () = check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ])

let test_geomean () =
  check_float "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  check_float "singleton" 5.0 (Stats.geomean [ 5.0 ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_geomean_large () =
  (* 1000 values of 1e30 would overflow a naive product. *)
  let xs = List.init 1000 (fun _ -> 1e30) in
  check_close 1e20 "log-space stability" 1e30 (Stats.geomean xs)

let test_stddev () =
  check_float "constant" 0.0 (Stats.stddev [ 4.0; 4.0; 4.0 ]);
  check_float "singleton" 0.0 (Stats.stddev [ 7.0 ]);
  check_close 1e-9 "sample stddev" (sqrt 2.5)
    (Stats.stddev [ 1.0; 2.0; 3.0; 4.0; 5.0 ])

let test_median () =
  check_float "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  check_float "infinities welcome" 1.0
    (Stats.median [ Float.neg_infinity; 1.0; Float.infinity ])

let test_percentile () =
  let xs = [ 10.0; 20.0; 30.0; 40.0 ] in
  check_float "p0" 10.0 (Stats.percentile 0.0 xs);
  check_float "p100" 40.0 (Stats.percentile 100.0 xs);
  check_float "p50 interpolates" 25.0 (Stats.percentile 50.0 xs)

let test_min_max_by () =
  let xs = [ ("a", 3.0); ("b", 1.0); ("c", 2.0) ] in
  Alcotest.(check string) "min" "b" (fst (Stats.min_by snd xs));
  Alcotest.(check string) "max" "a" (fst (Stats.max_by snd xs))

let test_argmin () =
  Alcotest.(check int) "argmin" 2 (Stats.argmin [| 5.0; 3.0; 1.0; 4.0 |]);
  Alcotest.(check int) "first on ties" 0 (Stats.argmin [| 1.0; 1.0 |])

let test_top_k () =
  let costs = [| 5.0; 1.0; 4.0; 2.0; 3.0 |] in
  Alcotest.(check (list int)) "ascending top-3" [ 1; 3; 4 ]
    (Stats.top_k_indices 3 costs);
  Alcotest.(check (list int)) "k clamps" [ 1; 3; 4; 2; 0 ]
    (Stats.top_k_indices 99 costs);
  Alcotest.(check (list int)) "k=0" [] (Stats.top_k_indices 0 costs)

let test_clamp () =
  check_float "lo" 1.0 (Stats.clamp ~lo:1.0 ~hi:2.0 0.0);
  check_float "hi" 2.0 (Stats.clamp ~lo:1.0 ~hi:2.0 3.0);
  check_float "inside" 1.5 (Stats.clamp ~lo:1.0 ~hi:2.0 1.5)

let test_speedup () = check_float "ratio" 2.0 (Stats.speedup ~baseline:10.0 5.0)

(* --- Table ------------------------------------------------------------ *)

let test_table_render () =
  let t = Table.create ~title:"T" [ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1.5" ];
  Table.add_row t [ "b" ];
  let s = Table.render t in
  Alcotest.(check bool) "title present" true (String.length s > 0);
  Alcotest.(check bool) "contains alpha" true
    (Test_helpers.contains s "alpha")

let test_table_too_wide () =
  let t = Table.create ~title:"T" [ "one" ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than headers") (fun () ->
      Table.add_row t [ "a"; "b" ])

let test_fmt () =
  Alcotest.(check string) "fmt_f" "1.234" (Table.fmt_f 1.2344);
  Alcotest.(check string) "fmt_pct positive" "+9.3%" (Table.fmt_pct 1.093);
  Alcotest.(check string) "fmt_pct negative" "-5.0%" (Table.fmt_pct 0.95)

let test_bar () =
  Alcotest.(check string) "zero" "" (Table.bar ~width:10 ~scale:1.0 0.0);
  Alcotest.(check string) "full" "##########"
    (Table.bar ~width:10 ~scale:1.0 2.0);
  Alcotest.(check string) "half" "#####" (Table.bar ~width:10 ~scale:1.0 0.5)

(* --- monotonic clock --------------------------------------------------- *)

let test_clock_now_advances () =
  (* Successive reads never decrease, and the monotonic epoch is not the
     wall epoch (CLOCK_MONOTONIC counts from boot, not 1970). *)
  let a = Ft_util.Clock.now () in
  let b = Ft_util.Clock.now () in
  Alcotest.(check bool) "now never decreases" true (b >= a);
  Alcotest.(check bool) "wall is epoch-scale" true
    (Ft_util.Clock.wall () > 1.0e9)

(* --- qcheck properties ------------------------------------------------ *)

let prop_monotonize_never_goes_backward =
  (* Fold an arbitrary sequence of raw clock readings — including
     backward steps, as a stepped/virtualized clock can produce —
     through the ratchet: elapsed time between any two successive
     ratcheted values must never be negative, and a genuinely advancing
     reading must pass through unchanged. *)
  QCheck.Test.make ~count:300 ~name:"monotonize: elapsed never negative"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.0) 1000.0))
    (fun readings ->
      let last = ref neg_infinity in
      List.for_all
        (fun raw ->
          let t = Ft_util.Clock.monotonize ~last:!last raw in
          let ok =
            t >= !last && (raw <= !last || t = raw) && (raw > !last || t = !last)
          in
          last := t;
          ok)
        readings)

let prop_top_k_matches_sort =
  QCheck.Test.make ~count:200 ~name:"top_k agrees with full sort"
    QCheck.(pair (array_of_size Gen.(int_range 1 40) (float_range 0.0 100.0)) small_nat)
    (fun (costs, k) ->
      let k = k mod (Array.length costs + 2) in
      let indices = Stats.top_k_indices k costs in
      let sorted = Array.to_list costs |> List.sort compare in
      let expected =
        List.filteri (fun i _ -> i < k) sorted
      in
      List.map (fun i -> costs.(i)) indices = expected)

let prop_geomean_between_min_max =
  QCheck.Test.make ~count:200 ~name:"geomean between min and max"
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.1 10.0))
    (fun xs ->
      let g = Stats.geomean xs in
      let lo = List.fold_left Float.min infinity xs in
      let hi = List.fold_left Float.max neg_infinity xs in
      g >= lo -. 1e-9 && g <= hi +. 1e-9)

let prop_rng_float_in_range =
  QCheck.Test.make ~count:200 ~name:"Rng.float stays in range"
    QCheck.(pair small_int (float_range 0.1 100.0))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.float rng bound in
      v >= 0.0 && v < bound)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~count:100 ~name:"shuffle preserves elements"
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      Rng.shuffle (Rng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let prop_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"percentile is monotone in p"
    QCheck.(
      triple
        (list_of_size Gen.(int_range 1 30) (float_range 0.0 100.0))
        (float_range 0.0 100.0) (float_range 0.0 100.0))
    (fun (xs, p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile lo xs <= Stats.percentile hi xs +. 1e-9)

let prop_robust_representative_within_mads =
  QCheck.Test.make ~count:200
    ~name:"robust_representative within 3 MADs of median"
    QCheck.(array_of_size Gen.(int_range 1 30) (float_range 0.1 100.0))
    (fun xs ->
      let i = Stats.robust_representative xs in
      let l = Array.to_list xs in
      let med = Stats.median l in
      let mad = Stats.median (List.map (fun x -> Float.abs (x -. med)) l) in
      i >= 0
      && i < Array.length xs
      && Float.abs (xs.(i) -. med) <= (3.0 *. mad) +. 1e-9)

let prop_geomean_le_mean =
  QCheck.Test.make ~count:200 ~name:"geomean <= mean (AM-GM)"
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.1 10.0))
    (fun xs -> Stats.geomean xs <= Stats.mean xs +. 1e-9)

let prop_label_streams_sibling_independent =
  (* The stream behind a label must not depend on how much was already
     drawn from any sibling label's stream — the property the engine's
     per-job noise streams rely on for schedule independence. *)
  QCheck.Test.make ~count:200 ~name:"of_label independent of sibling draws"
    QCheck.(triple small_int (int_bound 16) (int_bound 16))
    (fun (seed, before, after) ->
      let r1 = Rng.create seed in
      let sibling = Rng.of_label r1 "sibling" in
      for _ = 1 to before do
        ignore (Rng.int64 sibling)
      done;
      let a1 = Rng.of_label r1 "target" in
      let x = Rng.int64 a1 in
      let r2 = Rng.create seed in
      let a2 = Rng.of_label r2 "target" in
      let y = Rng.int64 a2 in
      for _ = 1 to after do
        ignore (Rng.int64 (Rng.of_label r2 "sibling"))
      done;
      x = y)

let prop_rng_state_roundtrip =
  (* The exact persistence path a checkpoint would use: state -> decimal
     string -> of_state must resume the identical stream. *)
  QCheck.Test.make ~count:200 ~name:"Rng state survives save/restore"
    QCheck.(pair small_int (int_bound 50))
    (fun (seed, advance) ->
      let r = Rng.create seed in
      for _ = 1 to advance do
        ignore (Rng.int64 r)
      done;
      let persisted = Int64.to_string (Rng.state r) in
      let r' = Rng.of_state (Int64.of_string persisted) in
      let xs = List.init 20 (fun _ -> Rng.int64 r) in
      let ys = List.init 20 (fun _ -> Rng.int64 r') in
      xs = ys)

(* --- NaN rejection ----------------------------------------------------- *)

(* A NaN loses every [<] comparison and sorts below -infinity under
   [Float.compare], so one reaching a Stats aggregate would silently
   poison the result — or, worse, WIN an argmin.  The module's contract
   is to reject NaN loudly; these properties splice one into a
   well-formed input at a random position and require the raise.
   (Infinities stay legitimate: faulted evaluations score infinity.) *)

let raises_invalid f =
  match f () with _ -> false | exception Invalid_argument _ -> true

let nan_list_arb =
  QCheck.(
    map
      (fun (xs, at) ->
        let at = at mod (List.length xs + 1) in
        List.filteri (fun i _ -> i < at) xs
        @ [ Float.nan ]
        @ List.filteri (fun i _ -> i >= at) xs)
      (pair
         (list_of_size Gen.(int_range 0 15) (float_range (-50.0) 50.0))
         small_nat))

let prop_aggregates_reject_nan =
  QCheck.Test.make ~count:200 ~name:"mean/median/percentile reject NaN"
    nan_list_arb (fun xs ->
      raises_invalid (fun () -> Stats.mean xs)
      && raises_invalid (fun () -> Stats.median xs)
      && raises_invalid (fun () -> Stats.percentile 50.0 xs)
      && raises_invalid (fun () -> Stats.stddev xs))

let prop_selectors_reject_nan =
  QCheck.Test.make ~count:200 ~name:"argmin/min_by/top_k reject NaN"
    nan_list_arb (fun xs ->
      let a = Array.of_list xs in
      raises_invalid (fun () -> Stats.argmin a)
      && raises_invalid (fun () -> Stats.min_by Fun.id xs)
      && raises_invalid (fun () -> Stats.max_by Fun.id xs)
      && raises_invalid (fun () -> Stats.top_k_indices 3 a))

let prop_median_permutation_invariant =
  (* [sorted] uses the total order [Float.compare]; on NaN-free input the
     aggregate must not depend on presentation order. *)
  QCheck.Test.make ~count:200 ~name:"median invariant under permutation"
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range (-100.0) 100.0))
    (fun xs ->
      let m = Stats.median xs in
      Stats.median (List.rev xs) = m
      && Stats.median (List.sort Float.compare xs) = m)

let suite =
  ( "util",
    [
      Alcotest.test_case "rng determinism" `Quick test_determinism;
      Alcotest.test_case "rng seed sensitivity" `Quick test_seed_sensitivity;
      Alcotest.test_case "rng copy" `Quick test_copy_independent;
      Alcotest.test_case "rng split" `Quick test_split_independent;
      Alcotest.test_case "rng label stability" `Quick test_label_stability;
      Alcotest.test_case "rng label no-advance" `Quick
        test_label_does_not_advance;
      Alcotest.test_case "rng int bounds" `Quick test_int_bounds;
      Alcotest.test_case "rng int coverage" `Quick test_int_covers_domain;
      Alcotest.test_case "rng float bounds" `Quick test_float_bounds;
      Alcotest.test_case "rng gauss moments" `Quick test_gauss_moments;
      Alcotest.test_case "rng choose" `Quick test_choose;
      Alcotest.test_case "rng shuffle" `Quick test_shuffle_permutation;
      Alcotest.test_case "rng sampling w/o replacement" `Quick
        test_sample_without_replacement;
      Alcotest.test_case "hash_string" `Quick test_hash_string_stable;
      Alcotest.test_case "mean" `Quick test_mean;
      Alcotest.test_case "geomean" `Quick test_geomean;
      Alcotest.test_case "geomean large values" `Quick test_geomean_large;
      Alcotest.test_case "stddev" `Quick test_stddev;
      Alcotest.test_case "median" `Quick test_median;
      Alcotest.test_case "percentile" `Quick test_percentile;
      Alcotest.test_case "min_by/max_by" `Quick test_min_max_by;
      Alcotest.test_case "argmin" `Quick test_argmin;
      Alcotest.test_case "top_k" `Quick test_top_k;
      Alcotest.test_case "clamp" `Quick test_clamp;
      Alcotest.test_case "speedup" `Quick test_speedup;
      Alcotest.test_case "table render" `Quick test_table_render;
      Alcotest.test_case "table width check" `Quick test_table_too_wide;
      Alcotest.test_case "formatting" `Quick test_fmt;
      Alcotest.test_case "ascii bars" `Quick test_bar;
      Alcotest.test_case "monotonic clock advances" `Quick
        test_clock_now_advances;
      QCheck_alcotest.to_alcotest prop_top_k_matches_sort;
      QCheck_alcotest.to_alcotest prop_geomean_between_min_max;
      QCheck_alcotest.to_alcotest prop_rng_float_in_range;
      QCheck_alcotest.to_alcotest prop_shuffle_preserves_multiset;
      QCheck_alcotest.to_alcotest prop_percentile_monotone;
      QCheck_alcotest.to_alcotest prop_robust_representative_within_mads;
      QCheck_alcotest.to_alcotest prop_geomean_le_mean;
      QCheck_alcotest.to_alcotest prop_label_streams_sibling_independent;
      QCheck_alcotest.to_alcotest prop_rng_state_roundtrip;
      QCheck_alcotest.to_alcotest prop_aggregates_reject_nan;
      QCheck_alcotest.to_alcotest prop_selectors_reject_nan;
      QCheck_alcotest.to_alcotest prop_median_permutation_invariant;
      QCheck_alcotest.to_alcotest prop_monotonize_never_goes_backward;
    ] )
