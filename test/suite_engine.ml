(* Tests for the parallel evaluation engine: worker-pool order and error
   discipline, deterministic parallelism of the searches built on it,
   cache round-trips and hit accounting, telemetry. *)

open Ft_prog
module Pool = Ft_engine.Pool
module Cache = Ft_engine.Cache
module Telemetry = Ft_engine.Telemetry
module Engine = Ft_engine.Engine
module Exec = Ft_machine.Exec
module Context = Funcytuner.Context
module Collection = Funcytuner.Collection
module Result = Funcytuner.Result
module Tuner = Funcytuner.Tuner
module Rng = Ft_util.Rng

let program = Option.get (Ft_suite.Suite.find "363.swim")
let platform = Platform.Broadwell
let input = Ft_suite.Suite.tuning_input platform program

let make_session ?(pool_size = 40) ?(seed = 4242) jobs =
  Tuner.make_session ~pool_size ~jobs ~platform ~program ~input ~seed ()

(* --- Pool ----------------------------------------------------------------- *)

let test_pool_preserves_order () =
  (* Stress fan-out: work per item varies by two orders of magnitude, so
     late submissions overtake early ones on any schedule — results must
     come back in submission order regardless. *)
  let items = Array.init 500 (fun i -> i) in
  let work i =
    let spins = if i mod 7 = 0 then 5000 else 50 in
    let acc = ref i in
    for _ = 1 to spins do
      acc := (!acc * 31) mod 65537
    done;
    (i, !acc)
  in
  let sequential = Pool.map ~jobs:1 work items in
  let parallel = Pool.map ~jobs:8 work items in
  Alcotest.(check bool) "parallel = sequential" true (sequential = parallel);
  Array.iteri
    (fun idx (i, _) ->
      Alcotest.(check int) "submission order preserved" idx i)
    parallel

let test_pool_submit_list () =
  let thunks = List.init 20 (fun i () -> 2 * i) in
  Alcotest.(check (list int))
    "submit preserves order"
    (List.init 20 (fun i -> 2 * i))
    (Pool.submit ~jobs:3 thunks)

let test_pool_propagates_failure () =
  let work i = if i = 13 then failwith "boom" else i in
  (match Pool.map ~jobs:4 work (Array.init 64 (fun i -> i)) with
  | exception Pool.Worker_failure (Failure msg) ->
      Alcotest.(check string) "original exception carried" "boom" msg
  | exception e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e)
  | _ -> Alcotest.fail "worker failure swallowed");
  match Pool.map ~jobs:1 work (Array.init 64 (fun i -> i)) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "sequential failure swallowed"

let test_pool_map_result_partial () =
  (* One poisoned item must not take the batch down: every other result is
     preserved, in submission order, with the failure carried as [Error]. *)
  let work i = if i mod 17 = 13 then failwith (string_of_int i) else i * i in
  let check jobs =
    let results = Pool.map_result ~jobs work (Array.init 100 (fun i -> i)) in
    Alcotest.(check int) "all slots filled" 100 (Array.length results);
    Array.iteri
      (fun i r ->
        match r with
        | Ok v -> Alcotest.(check int) "ok slot in order" (i * i) v
        | Error (Failure msg) ->
            Alcotest.(check int) "failing index preserved" i
              (int_of_string msg);
            Alcotest.(check int) "only poisoned items fail" 13 (i mod 17)
        | Error e -> Alcotest.fail (Printexc.to_string e))
      results
  in
  check 1;
  check 4

let test_pool_map_result_matches_map_on_success () =
  let work i = i + 1 in
  let items = Array.init 50 (fun i -> i) in
  let plain = Pool.map ~jobs:4 work items in
  let wrapped = Pool.map_result ~jobs:4 work items in
  Alcotest.(check bool) "same values modulo Ok" true
    (Array.for_all2 (fun v r -> r = Ok v) plain wrapped)

let test_pool_rejects_bad_jobs () =
  match Pool.map ~jobs:0 (fun i -> i) [| 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jobs=0 accepted"

(* --- deterministic parallelism -------------------------------------------- *)

let test_collection_parallel_bit_identical () =
  let collect jobs =
    Lazy.force (make_session jobs).Tuner.collection
  in
  let seq = collect 1 and par = collect 4 in
  Alcotest.(check bool) "times matrices bit-identical" true
    (seq.Collection.times = par.Collection.times);
  Alcotest.(check bool) "totals bit-identical" true
    (seq.Collection.totals = par.Collection.totals)

let check_result_equal what (a : Result.t) (b : Result.t) =
  Alcotest.(check string) (what ^ " algorithm") a.Result.algorithm b.Result.algorithm;
  Alcotest.(check bool) (what ^ " best_seconds bit-identical") true
    (a.Result.best_seconds = b.Result.best_seconds);
  Alcotest.(check bool) (what ^ " speedup bit-identical") true
    (a.Result.speedup = b.Result.speedup);
  Alcotest.(check bool) (what ^ " trace bit-identical") true
    (a.Result.trace = b.Result.trace);
  Alcotest.(check bool) (what ^ " configuration identical") true
    (a.Result.configuration = b.Result.configuration)

let test_run_all_parallel_bit_identical () =
  (* The acceptance property: a fixed seed gives byte-identical reports
     under jobs=4 and jobs=1. *)
  let report jobs = Tuner.run_all ~top_x:8 (make_session ~pool_size:30 jobs) in
  let seq = report 1 and par = report 4 in
  check_result_equal "random" seq.Tuner.random par.Tuner.random;
  check_result_equal "fr" seq.Tuner.fr par.Tuner.fr;
  check_result_equal "cfr" seq.Tuner.cfr par.Tuner.cfr;
  check_result_equal "greedy"
    seq.Tuner.greedy.Funcytuner.Greedy.realized
    par.Tuner.greedy.Funcytuner.Greedy.realized;
  Alcotest.(check bool) "greedy independent bound bit-identical" true
    (seq.Tuner.greedy.Funcytuner.Greedy.independent_seconds
    = par.Tuner.greedy.Funcytuner.Greedy.independent_seconds)

let test_worker_count_does_not_leak_into_streams () =
  let cfr jobs = (Tuner.run_cfr ~top_x:5 (make_session ~seed:77 jobs)).Result.speedup in
  let s1 = cfr 1 in
  Alcotest.(check bool) "jobs=2,3,8 all agree with jobs=1" true
    (List.for_all (fun j -> cfr j = s1) [ 2; 3; 8 ])

(* --- cache ----------------------------------------------------------------- *)

let toolchain = Ft_machine.Toolchain.make platform

let some_builds =
  let rng = Rng.create 9 in
  List.init 6 (fun i ->
      Engine.Uniform
        { cv = Ft_flags.Space.sample rng; instrumented = i mod 2 = 0 })

let test_cache_roundtrip () =
  let engine = Engine.create () in
  List.iter
    (fun b ->
      ignore (Engine.summary engine ~toolchain ~program ~input b))
    some_builds;
  let cache = Engine.cache engine in
  Alcotest.(check int) "six distinct entries" 6 (Cache.length cache);
  let path = Filename.temp_file "ft_cache" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* Both on-disk formats must round-trip bit-exactly; load
         auto-detects which one it was handed. *)
      List.iter
        (fun format ->
          Cache.save ~format cache ~path;
          let reloaded = Cache.load path in
          Alcotest.(check bool)
            (Cache.format_to_string format
            ^ " save/load round-trip is bit-exact")
            true
            (Cache.bindings cache = Cache.bindings reloaded))
        [ Cache.Text; Cache.Binary ])

let test_cache_load_rejects_garbage () =
  let path = Filename.temp_file "ft_cache" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a cache\n";
      close_out oc;
      match Cache.load path with
      | exception Cache.Corrupt { line; _ } ->
          Alcotest.(check int) "rejected at the header line" 1 line
      | _ -> Alcotest.fail "garbage accepted")

let test_cache_load_skips_malformed_entries () =
  (* After a valid v1 magic line, a torn entry (e.g. a crash mid-write
     before Cache.save became atomic) is skipped and reported, not
     fatal.  Pinned to the text format: the torn line is a text-era
     artifact (its binary counterpart is the next test). *)
  let engine = Engine.create () in
  List.iter
    (fun b -> ignore (Engine.summary engine ~toolchain ~program ~input b))
    some_builds;
  let path = Filename.temp_file "ft_cache" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cache.save ~format:Cache.Text (Engine.cache engine) ~path;
      let oc = open_out_gen [ Open_append ] 0o600 path in
      output_string oc "torn\tentry\n";
      close_out oc;
      let warned = ref [] in
      let reloaded =
        Cache.load ~warn:(fun ~line ~reason -> warned := (line, reason) :: !warned) path
      in
      Alcotest.(check int) "valid entries survive" 6 (Cache.length reloaded);
      Alcotest.(check int) "exactly one warning" 1 (List.length !warned);
      Alcotest.(check int) "warning points at the torn line" 8
        (fst (List.hd !warned)))

let test_binary_cache_tolerates_torn_tail () =
  (* The binary counterpart: garbage appended to a v2 file (a writer
     killed mid-append) is refused at the frame layer — committed
     entries all load, the tail is reported, nothing is invented. *)
  let engine = Engine.create () in
  List.iter
    (fun b -> ignore (Engine.summary engine ~toolchain ~program ~input b))
    some_builds;
  let path = Filename.temp_file "ft_cache" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cache.save ~format:Cache.Binary (Engine.cache engine) ~path;
      let oc = open_out_gen [ Open_append; Open_binary ] 0o600 path in
      output_string oc "torn\tentry\n";
      close_out oc;
      let warned = ref [] in
      let reloaded =
        Cache.load ~warn:(fun ~line ~reason -> warned := (line, reason) :: !warned) path
      in
      Alcotest.(check int) "committed entries survive" 6
        (Cache.length reloaded);
      Alcotest.(check int) "the torn tail is reported" 1 (List.length !warned))

let test_cache_save_is_atomic () =
  (* The write goes through a temp file + rename: saving over an existing
     file never leaves a *.tmp sibling behind. *)
  let engine = Engine.create () in
  List.iter
    (fun b -> ignore (Engine.summary engine ~toolchain ~program ~input b))
    some_builds;
  let dir = Filename.temp_file "ft_atomic" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let path = Filename.concat dir "cache.tsv" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Cache.save (Engine.cache engine) ~path;
      Cache.save (Engine.cache engine) ~path;
      Alcotest.(check (list string))
        "only the cache file remains" [ "cache.tsv" ]
        (Array.to_list (Sys.readdir dir)))

let test_cache_hit_counting () =
  let engine = Engine.create () in
  let build = List.hd some_builds in
  let summary () = Engine.summary engine ~toolchain ~program ~input build in
  let first = summary () in
  let again = summary () in
  let third = summary () in
  Alcotest.(check bool) "hits return the same summary" true
    (first = again && again = third);
  let s = Telemetry.snapshot (Engine.telemetry engine) in
  Alcotest.(check int) "one miss" 1 s.Telemetry.cache_misses;
  Alcotest.(check int) "two hits" 2 s.Telemetry.cache_hits;
  Alcotest.(check int) "one build" 1 s.Telemetry.builds;
  Alcotest.(check int) "one run" 1 s.Telemetry.runs

let test_preloaded_cache_changes_nothing () =
  (* Warming an engine with a persisted cache must not change any measured
     value — noise lives outside the cache. *)
  let run ?cache () =
    let engine = Engine.create ?cache () in
    let session =
      Tuner.make_session ~pool_size:25 ~engine ~platform ~program ~input
        ~seed:321 ()
    in
    (Tuner.run_cfr ~top_x:5 session, engine)
  in
  let cold, engine = run () in
  let path = Filename.temp_file "ft_cache" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cache.save (Engine.cache engine) ~path;
      let warm, warm_engine = run ~cache:(Cache.load path) () in
      Alcotest.(check bool) "warm result bit-identical" true
        (cold.Result.speedup = warm.Result.speedup
        && cold.Result.trace = warm.Result.trace);
      let s = Telemetry.snapshot (Engine.telemetry warm_engine) in
      Alcotest.(check int) "warm run never built" 0 s.Telemetry.builds)

let test_key_sensitivity () =
  let key build = Engine.key ~toolchain ~program ~input build in
  let cv = Ft_flags.Cv.o3 in
  let uniform = Engine.Uniform { cv; instrumented = false } in
  let instrumented = Engine.Uniform { cv; instrumented = true } in
  let assigned =
    Engine.Assigned { assignment = [ ("m", cv) ]; instrumented = false }
  in
  Alcotest.(check bool) "instrumentation changes the key" false
    (key uniform = key instrumented);
  Alcotest.(check bool) "build kind changes the key" false
    (key uniform = key assigned);
  let other_input = Ft_prog.Input.with_steps input (input.Input.steps + 1) in
  Alcotest.(check bool) "input changes the key" false
    (key uniform = Engine.key ~toolchain ~program ~input:other_input uniform);
  Alcotest.(check string) "assignment order does not change the key"
    (Engine.key ~toolchain ~program ~input
       (Engine.Assigned
          { assignment = [ ("a", cv); ("b", Ft_flags.Cv.o2) ]; instrumented = false }))
    (Engine.key ~toolchain ~program ~input
       (Engine.Assigned
          { assignment = [ ("b", Ft_flags.Cv.o2); ("a", cv) ]; instrumented = false }))

(* --- telemetry -------------------------------------------------------------- *)

let test_telemetry_progress_and_timers () =
  let t = Telemetry.create () in
  let seen = ref [] in
  Telemetry.set_progress t (fun ~completed ~expected ->
      seen := (completed, expected) :: !seen);
  Telemetry.expect t 3;
  Telemetry.tick t;
  Telemetry.tick t;
  Telemetry.tick t;
  Alcotest.(check (list (pair int int)))
    "ticks report completed/expected"
    [ (3, 3); (2, 3); (1, 3) ]
    !seen;
  Telemetry.add_time t "phase" 1.5;
  Telemetry.add_time t "phase" 0.5;
  let s = Telemetry.snapshot t in
  Alcotest.(check (list (pair string (float 1e-9))))
    "timers accumulate"
    [ ("phase", 2.0) ]
    s.Telemetry.timers;
  Telemetry.reset t;
  let s = Telemetry.snapshot t in
  Alcotest.(check int) "reset clears" 0 (List.length s.Telemetry.timers)

let test_render_mentions_counters () =
  let engine = Engine.create () in
  ignore
    (Engine.summary engine ~toolchain ~program ~input (List.hd some_builds));
  let rendered = Telemetry.render (Engine.telemetry engine) in
  Alcotest.(check bool) "render mentions builds" true
    (Test_helpers.contains rendered "builds");
  Alcotest.(check bool) "render mentions cache" true
    (Test_helpers.contains rendered "cache")

let suite =
  ( "engine",
    [
      Alcotest.test_case "pool order under stress fan-out" `Quick
        test_pool_preserves_order;
      Alcotest.test_case "pool submit list" `Quick test_pool_submit_list;
      Alcotest.test_case "pool failure propagation" `Quick
        test_pool_propagates_failure;
      Alcotest.test_case "pool map_result keeps partial results" `Quick
        test_pool_map_result_partial;
      Alcotest.test_case "pool map_result = map on success" `Quick
        test_pool_map_result_matches_map_on_success;
      Alcotest.test_case "pool rejects jobs=0" `Quick test_pool_rejects_bad_jobs;
      Alcotest.test_case "collection parallel determinism" `Quick
        test_collection_parallel_bit_identical;
      Alcotest.test_case "run_all parallel determinism" `Quick
        test_run_all_parallel_bit_identical;
      Alcotest.test_case "worker count independence" `Quick
        test_worker_count_does_not_leak_into_streams;
      Alcotest.test_case "cache save/load round-trip" `Quick
        test_cache_roundtrip;
      Alcotest.test_case "cache rejects garbage" `Quick
        test_cache_load_rejects_garbage;
      Alcotest.test_case "cache skips malformed entries" `Quick
        test_cache_load_skips_malformed_entries;
      Alcotest.test_case "binary cache tolerates a torn tail" `Quick
        test_binary_cache_tolerates_torn_tail;
      Alcotest.test_case "cache save is atomic" `Quick
        test_cache_save_is_atomic;
      Alcotest.test_case "cache hit counting" `Quick test_cache_hit_counting;
      Alcotest.test_case "preloaded cache changes nothing" `Quick
        test_preloaded_cache_changes_nothing;
      Alcotest.test_case "cache key sensitivity" `Quick test_key_sensitivity;
      Alcotest.test_case "telemetry progress and timers" `Quick
        test_telemetry_progress_and_timers;
      Alcotest.test_case "telemetry render" `Quick test_render_mentions_counters;
    ] )
