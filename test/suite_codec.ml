(* Property suite for the binary cache codec (on-disk format v2).

   Cache_codec is pure string transcoding — no I/O — so the two claims
   the crash-safety story rests on can be checked exhaustively:

   - encode/decode round-trips arbitrary caches bit-exactly (keys are
     arbitrary bytes, floats compare by their IEEE-754 bits);
   - decoding a file truncated at *every* byte offset never raises,
     never drops a committed (fully-framed) record, and never invents
     one: the frame boundary is the commit marker.

   The file-level protocol on top (locks, delta sync, compaction) is
   exercised in suite_engine and suite_backend; nothing here touches
   disk. *)

module Codec = Ft_engine.Cache_codec
module Exec = Ft_machine.Exec

let header_len = String.length Codec.header

(* -- bit-exact equality ------------------------------------------------- *)

let feq a b = Int64.bits_of_float a = Int64.bits_of_float b

let summary_eq (a : Exec.summary) (b : Exec.summary) =
  feq a.Exec.sum_total_s b.Exec.sum_total_s
  && feq a.Exec.sum_nonloop_s b.Exec.sum_nonloop_s
  && List.length a.Exec.sum_loops = List.length b.Exec.sum_loops
  && List.for_all2
       (fun (n1, s1) (n2, s2) -> String.equal n1 n2 && feq s1 s2)
       a.Exec.sum_loops b.Exec.sum_loops

let bindings_eq xs ys =
  List.length xs = List.length ys
  && List.for_all2
       (fun (k1, s1) (k2, s2) -> String.equal k1 k2 && summary_eq s1 s2)
       xs ys

(* -- generators --------------------------------------------------------- *)

(* Finite floats only: the codec deliberately rejects non-finite values
   as bit rot (covered by a unit test below).  The specials exercise
   signed zero, subnormals and full-exponent values — all of which must
   survive bit-exactly. *)
let finite_float_gen =
  QCheck.Gen.(
    oneof
      [
        float;
        oneofl
          [ 0.0; -0.0; 1e-310; -1e-310; max_float; -.max_float; 1.5e300 ];
      ]
    |> map (fun f -> if Float.is_finite f then f else 0.0))

(* Keys and loop names are arbitrary bytes — newlines, tabs, NULs; the
   binary format must not care (the text format could never hold
   these). *)
let raw_string_gen n = QCheck.Gen.(string_size ~gen:char (0 -- n))

let summary_gen =
  QCheck.Gen.(
    let* sum_total_s = finite_float_gen in
    let* sum_nonloop_s = finite_float_gen in
    let* sum_loops =
      list_size (0 -- 4) (pair (raw_string_gen 12) finite_float_gen)
    in
    return { Exec.sum_total_s; sum_nonloop_s; sum_loops })

let bindings_gen size =
  QCheck.Gen.(list_size (0 -- size) (pair (raw_string_gen 40) summary_gen))

let print_bindings bs =
  String.concat "; "
    (List.map
       (fun (k, s) ->
         Printf.sprintf "%S->(%h,%h,%d loops)" k s.Exec.sum_total_s
           s.Exec.sum_nonloop_s
           (List.length s.Exec.sum_loops))
       bs)

let arbitrary_bindings size =
  QCheck.make ~print:print_bindings (bindings_gen size)

(* Byte offset just past each record's frame, in file order. *)
let frame_ends bindings =
  let ends = ref [] in
  let pos = ref header_len in
  List.iter
    (fun (k, s) ->
      let buf = Buffer.create 64 in
      Codec.encode_record buf k s;
      pos := !pos + Buffer.length buf;
      ends := !pos :: !ends)
    bindings;
  List.rev !ends

(* -- properties --------------------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"encode/decode round-trips bit-exactly"
    (arbitrary_bindings 20) (fun bindings ->
      let file = Codec.encode_file bindings in
      Codec.detect file = `Binary
      &&
      let d = Codec.decode ~pos:header_len file in
      bindings_eq d.Codec.entries bindings
      && d.Codec.committed = String.length file
      && (not d.Codec.torn)
      && d.Codec.skipped = 0)

(* The central crash-safety property: cutting the file at every byte
   offset must decode to exactly the records whose complete frame lies
   within the cut — no exception, no dropped committed record, no
   half-record ever surfaced — with [committed] at the last frame
   boundary and [torn] reporting whether stray tail bytes remain. *)
let prop_truncate_every_byte =
  QCheck.Test.make ~count:40 ~name:"truncation at every byte is safe"
    (arbitrary_bindings 6) (fun bindings ->
      let file = Codec.encode_file bindings in
      let ends = frame_ends bindings in
      let ok = ref true in
      for cut = header_len to String.length file do
        let contents = String.sub file 0 cut in
        let d = Codec.decode ~pos:header_len contents in
        let expected_ends = List.filter (fun e -> e <= cut) ends in
        let expected_committed =
          List.fold_left (fun _ e -> e) header_len expected_ends
        in
        let expected =
          List.filteri (fun i _ -> i < List.length expected_ends) bindings
        in
        if
          not
            (bindings_eq d.Codec.entries expected
            && d.Codec.committed = expected_committed
            && d.Codec.torn = (cut > expected_committed)
            && d.Codec.skipped = 0)
        then ok := false
      done;
      !ok)

(* Cutting inside the magic line is the loader's problem, not the
   decoder's: detect must call every proper prefix a truncated header. *)
let prop_truncated_header_detected =
  QCheck.Test.make ~count:20 ~name:"header prefixes detect as truncated"
    (arbitrary_bindings 3) (fun bindings ->
      let file = Codec.encode_file bindings in
      let ok = ref true in
      for cut = 1 to header_len - 1 do
        if Codec.detect (String.sub file 0 cut) <> `Corrupt "truncated header"
        then ok := false
      done;
      !ok)

(* Decoding from any committed frame boundary yields exactly the records
   appended after it — the property delta sync is built on. *)
let prop_delta_decode =
  QCheck.Test.make ~count:100 ~name:"decode from any frame boundary (delta)"
    QCheck.(pair (arbitrary_bindings 8) small_nat)
    (fun (bindings, skip) ->
      let file = Codec.encode_file bindings in
      let boundaries = header_len :: frame_ends bindings in
      let skip = skip mod List.length boundaries in
      let pos = List.nth boundaries skip in
      let d = Codec.decode ~pos file in
      bindings_eq d.Codec.entries
        (List.filteri (fun i _ -> i >= skip) bindings)
      && d.Codec.committed = String.length file
      && (not d.Codec.torn)
      && d.Codec.skipped = 0)

(* Any bytes after a valid header decode without raising, and committed
   never exceeds the input. *)
let prop_garbage_never_raises =
  QCheck.Test.make ~count:300 ~name:"decode never raises on garbage"
    (QCheck.make QCheck.Gen.(string_size ~gen:char (0 -- 200)))
    (fun junk ->
      let contents = Codec.header ^ junk in
      let d = Codec.decode ~pos:header_len contents in
      d.Codec.committed >= header_len
      && d.Codec.committed <= String.length contents)

(* Flipping any single byte of a valid file past the header must not
   make decode raise (it may tear or skip, never abort). *)
let prop_bitrot_never_raises =
  QCheck.Test.make ~count:100 ~name:"single-byte corruption never raises"
    QCheck.(pair (arbitrary_bindings 5) (pair small_nat small_nat))
    (fun (bindings, (at, delta)) ->
      let file = Bytes.of_string (Codec.encode_file bindings) in
      if Bytes.length file = header_len then true
      else begin
        let at = header_len + (at mod (Bytes.length file - header_len)) in
        Bytes.set file at
          (Char.chr ((Char.code (Bytes.get file at) + 1 + delta) land 0xff));
        let d = Codec.decode ~pos:header_len (Bytes.to_string file) in
        d.Codec.committed <= Bytes.length file
      end)

(* -- unit tests --------------------------------------------------------- *)

let s1 =
  { Exec.sum_total_s = 1.5; sum_nonloop_s = 0.25; sum_loops = [ ("a", 0.5) ] }

let test_detect () =
  Alcotest.(check bool)
    "binary file" true
    (Codec.detect (Codec.encode_file [ ("k", s1) ]) = `Binary);
  Alcotest.(check bool)
    "text file" true
    (Codec.detect (Codec.text_magic ^ "\nrest") = `Text);
  Alcotest.(check bool)
    "empty is not an engine cache" true
    (Codec.detect "" = `Corrupt "not an engine cache file");
  Alcotest.(check bool)
    "garbage is not an engine cache" true
    (Codec.detect "definitely not a cache" = `Corrupt "not an engine cache file");
  Alcotest.(check bool)
    "bare text magic (no newline) is truncated" true
    (Codec.detect Codec.text_magic = `Corrupt "truncated header")

let test_malformed_payload_skipped () =
  (* A frame sealing a non-finite float is committed but malformed: it
     must be skipped (with a warning naming the record), while the valid
     record after it is still decoded. *)
  let buf = Buffer.create 64 in
  Buffer.add_string buf Codec.header;
  Codec.encode_record buf "rotten"
    { Exec.sum_total_s = Float.nan; sum_nonloop_s = 0.0; sum_loops = [] };
  Codec.encode_record buf "good" s1;
  let warned = ref [] in
  let d =
    Codec.decode
      ~warn:(fun ~line ~reason -> warned := (line, reason) :: !warned)
      ~pos:header_len (Buffer.contents buf)
  in
  Alcotest.(check int) "one skipped" 1 d.Codec.skipped;
  Alcotest.(check bool) "not torn" false d.Codec.torn;
  Alcotest.(check int) "committed past both" (Buffer.length buf)
    d.Codec.committed;
  Alcotest.(check (list string))
    "good record survives" [ "good" ]
    (List.map fst d.Codec.entries);
  Alcotest.(check bool)
    "warning names record 1" true
    (match !warned with [ (1, reason) ] -> reason <> "" | _ -> false)

let test_garbled_length_stops () =
  (* An implausible length prefix desynchronizes everything after it:
     decode must stop at the last good boundary and report torn. *)
  let buf = Buffer.create 64 in
  Buffer.add_string buf Codec.header;
  Codec.encode_record buf "good" s1;
  let boundary = Buffer.length buf in
  Buffer.add_int64_be buf (Int64.of_int (Codec.max_record_bytes + 1));
  Buffer.add_string buf "whatever follows is unreachable";
  let d = Codec.decode ~pos:header_len (Buffer.contents buf) in
  Alcotest.(check bool) "torn" true d.Codec.torn;
  Alcotest.(check int) "committed at last good frame" boundary
    d.Codec.committed;
  Alcotest.(check (list string))
    "good record kept" [ "good" ]
    (List.map fst d.Codec.entries)

let test_u16_overflow_rejected () =
  let buf = Buffer.create 64 in
  let huge = String.make 70000 'k' in
  Alcotest.check_raises "oversized key rejected"
    (Invalid_argument "Cache_codec: key length (70000) exceeds u16")
    (fun () -> Codec.encode_record buf huge s1)

let suite =
  ( "codec",
    [
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_truncate_every_byte;
      QCheck_alcotest.to_alcotest prop_truncated_header_detected;
      QCheck_alcotest.to_alcotest prop_delta_decode;
      QCheck_alcotest.to_alcotest prop_garbage_never_raises;
      QCheck_alcotest.to_alcotest prop_bitrot_never_raises;
      Alcotest.test_case "format detection" `Quick test_detect;
      Alcotest.test_case "malformed payload skipped" `Quick
        test_malformed_payload_skipped;
      Alcotest.test_case "garbled length stops the scan" `Quick
        test_garbled_length_stops;
      Alcotest.test_case "u16 overflow rejected" `Quick
        test_u16_overflow_rejected;
    ] )
