(* Test entry point: one Alcotest suite per library. *)

let () =
  Ft_shard.Shard.install ();
  Alcotest.run "funcytuner"
    [
      Suite_util.suite;
      Suite_flags.suite;
      Suite_prog.suite;
      Suite_suite.suite;
      Suite_benchmarks.suite;
      Suite_compiler.suite;
      Suite_machine.suite;
      Suite_caliper_outline.suite;
      Suite_engine.suite;
      Suite_codec.suite;
      Suite_fault.suite;
      Suite_selfcheck.suite;
      Suite_core.suite;
      Suite_baselines.suite;
      Suite_opentuner.suite;
      Suite_cobayn.suite;
      Suite_experiments.suite;
      Suite_obs.suite;
      Suite_serve.suite;
      Suite_golden.suite;
      Suite_integration.suite;
    ]
