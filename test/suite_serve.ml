(* Tests for the serving stack, bottom-up: Framing (wire format and the
   incremental decoder), Protocol (JSON codecs, version gate), Scheduler
   (coalescing / fairness / admission as pure state), and — in
   [suite_e2e], registered only in the fork-legal test binary — a real
   daemon exercised over its socket: single-flight coalescing under
   concurrency, mid-run joins, per-tenant fairness, backpressure,
   drain semantics, and byte-identity of served results against a solo
   search. *)

module Framing = Ft_framing.Framing
module Protocol = Ft_serve.Protocol
module Scheduler = Ft_serve.Scheduler
module Runner = Ft_serve.Runner
module Server = Ft_serve.Server
module Client = Ft_serve.Client
module Journal = Ft_serve.Journal
module Supervisor = Ft_serve.Supervisor
module Json = Ft_obs.Json

let check = Alcotest.check
let checki = check Alcotest.int
let checks = check Alcotest.string
let checkb = check Alcotest.bool

(* --- framing ----------------------------------------------------------- *)

let sockpair () =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (a, b)

let test_framing_roundtrip () =
  let a, b = sockpair () in
  let payloads = [ ""; "x"; String.make 70000 'q'; "{\"k\":1}" ] in
  List.iter (fun p -> Framing.write_bytes a (Bytes.of_string p)) payloads;
  List.iter
    (fun expected ->
      match Framing.read_bytes b with
      | Ok got -> checks "payload" expected (Bytes.to_string got)
      | Error e -> Alcotest.failf "read failed: %s" (Framing.error_to_string e))
    payloads;
  Unix.close a;
  (match Framing.read_bytes b with
  | Error Framing.Eof -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected clean Eof after close");
  Unix.close b

let test_framing_torn () =
  let a, b = sockpair () in
  (* a full header promising 100 bytes, then only 10, then death *)
  let header = Bytes.create 8 in
  Bytes.set_int64_be header 0 100L;
  ignore (Unix.write a header 0 8);
  ignore (Unix.write_substring a (String.make 10 'z') 0 10);
  Unix.close a;
  (match Framing.read_bytes b with
  | Error (Framing.Torn { got = 10; expected = 100; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Framing.error_to_string e)
  | Ok _ -> Alcotest.fail "torn frame read succeeded");
  Unix.close b

let test_framing_oversized () =
  let a, b = sockpair () in
  let header = Bytes.create 8 in
  Bytes.set_int64_be header 0 (Int64.of_int (10 * 1024 * 1024));
  ignore (Unix.write a header 0 8);
  (match Framing.read_bytes ~max_bytes:1024 b with
  | Error (Framing.Oversized { claimed; limit = 1024 }) ->
      checki "claimed" (10 * 1024 * 1024) claimed
  | Error e -> Alcotest.failf "wrong error: %s" (Framing.error_to_string e)
  | Ok _ -> Alcotest.fail "oversized frame read succeeded");
  Unix.close a;
  Unix.close b

(* write_all on a nonblocking fd: a frame far larger than the kernel
   socket buffer forces EAGAIN mid-write; write_all must poll for
   writability and resume until every byte is out, never raising and
   never tearing the frame.  The reader drains concurrently from a
   forked child so the writer genuinely fills the buffer first. *)
let test_write_all_nonblocking () =
  let a, b = sockpair () in
  Unix.set_nonblock a;
  let payload =
    String.init 1_000_000 (fun i -> Char.chr (((i * 31) + (i / 251)) mod 256))
  in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* Child: slow reader — let the writer hit a full buffer, then
         drain and echo a digest back on exit status. *)
      (try
         Unix.close a;
         Unix.sleepf 0.05;
         (match Framing.read_bytes b with
         | Ok got when Bytes.to_string got = payload -> Unix._exit 0
         | Ok _ -> Unix._exit 1
         | Error _ -> Unix._exit 2)
       with _ -> Unix._exit 3)
  | pid ->
      Unix.close b;
      Framing.write_bytes a (Bytes.of_string payload);
      Unix.close a;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED 1 -> Alcotest.fail "payload corrupted across EAGAIN"
      | _, Unix.WEXITED c -> Alcotest.failf "reader failed (exit %d)" c
      | _, _ -> Alcotest.fail "reader killed")

(* The decoder must reassemble frames from arbitrarily fragmented reads:
   drip a 3-frame stream through a nonblocking socket one odd-sized
   chunk at a time. *)
let test_decoder_reassembly () =
  let a, b = sockpair () in
  Unix.set_nonblock b;
  let payloads = [ "alpha"; String.make 9000 'w'; "" ] in
  let buf = Buffer.create 16384 in
  List.iter
    (fun p ->
      let h = Bytes.create 8 in
      Bytes.set_int64_be h 0 (Int64.of_int (String.length p));
      Buffer.add_bytes buf h;
      Buffer.add_string buf p)
    payloads;
  let stream = Buffer.contents buf in
  let dec = Framing.Decoder.create () in
  let got = ref [] in
  let closed = ref false in
  let pos = ref 0 in
  while not !closed do
    (if !pos < String.length stream then begin
       let n = min 577 (String.length stream - !pos) in
       ignore (Unix.write_substring a stream !pos n);
       pos := !pos + n;
       if !pos >= String.length stream then Unix.close a
     end);
    let { Framing.Decoder.frames; state } = Framing.Decoder.pump dec b in
    got := !got @ List.map Bytes.to_string frames;
    match state with
    | `Open -> ()
    | `Closed -> closed := true
    | `Error e -> Alcotest.failf "decoder error: %s" (Framing.error_to_string e)
  done;
  check (Alcotest.list Alcotest.string) "frames" payloads !got;
  Unix.close b

(* --- protocol ---------------------------------------------------------- *)

let spec ?(algorithm = "cfr") ?(seed = 1) ?top_x benchmark =
  { Protocol.benchmark; platform = "bdw"; algorithm; seed; pool = 10; top_x }

let roundtrip_request r =
  match Protocol.request_of_json (Protocol.request_to_json r) with
  | Ok r' -> checkb "request roundtrip" true (r = r')
  | Error e -> Alcotest.failf "decode failed: %s" (Protocol.decode_error_to_string e)

let roundtrip_response r =
  match Protocol.response_of_json (Protocol.response_to_json r) with
  | Ok r' -> checkb "response roundtrip" true (r = r')
  | Error e -> Alcotest.failf "decode failed: %s" (Protocol.decode_error_to_string e)

let test_protocol_roundtrip () =
  List.iter roundtrip_request
    [
      Protocol.Tune
        { id = "r1"; tenant = "t0"; spec = spec "swim"; deadline_ms = None };
      Protocol.Tune
        {
          id = "r2";
          tenant = "t1";
          spec = spec ~top_x:5 ~seed:9 "lulesh";
          deadline_ms = Some 1500;
        };
      Protocol.Ping;
      Protocol.Stats;
      Protocol.Shutdown;
    ];
  List.iter roundtrip_response
    [
      Protocol.Admitted { id = "r1"; queue_depth = 3 };
      Protocol.Coalesced { id = "r2"; leader = "r1" };
      Protocol.Started { id = "r1" };
      Protocol.Progress { id = "r1"; ticks = 50 };
      Protocol.Result
        {
          id = "r1";
          fingerprint = "abc";
          origin = Protocol.Fresh;
          group_size = 4;
          speedup = 1.25;
          evaluations = 100;
          run_s = 0.5;
          text = "CFR: speedup 1.250\n  line two\n";
        };
      Protocol.Result
        {
          id = "r2";
          fingerprint = "abc";
          origin = Protocol.Coalesced_with "r1";
          group_size = 4;
          speedup = 1.25;
          evaluations = 100;
          run_s = 0.5;
          text = "t\n";
        };
      Protocol.Rejected
        { id = "r3"; reason = Protocol.Queue_full { limit = 64 } };
      Protocol.Rejected { id = "r4"; reason = Protocol.Draining };
      Protocol.Rejected
        { id = "r5"; reason = Protocol.Unsupported "unknown benchmark 'x'" };
      Protocol.Rejected { id = "r6"; reason = Protocol.Bad_version { got = 9 } };
      Protocol.Rejected { id = "r7"; reason = Protocol.Malformed "not json" };
      Protocol.Rejected { id = "r9"; reason = Protocol.Deadline_exceeded };
      Protocol.Rejected
        { id = "r10"; reason = Protocol.Poisoned { crashes = 3 } };
      Protocol.Server_error { id = "r8"; message = "boom" };
      Protocol.Pong;
      Protocol.Stats_reply [ ("received", 10); ("admitted", 2) ];
      Protocol.Bye;
    ]

let test_protocol_version_gate () =
  let wrong = Json.Obj [ ("v", Json.Int 99); ("kind", Json.String "ping") ] in
  (match Protocol.request_of_json wrong with
  | Error (Protocol.Version_mismatch { got = 99 }) -> ()
  | _ -> Alcotest.fail "v=99 not flagged as version mismatch");
  let missing = Json.Obj [ ("kind", Json.String "ping") ] in
  (match Protocol.request_of_json missing with
  | Error (Protocol.Malformed_frame _) -> ()
  | _ -> Alcotest.fail "missing v not flagged as malformed");
  (match Protocol.request_of_frame (Bytes.of_string "not json at all") with
  | Error (Protocol.Malformed_frame _) -> ()
  | _ -> Alcotest.fail "garbage frame not flagged as malformed");
  (* protocol v1 peers are still spoken to: both accepted versions pass
     the gate, and a v1 tune (no deadline_ms field) decodes *)
  let downgrade = function
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (function "v", _ -> ("v", Json.Int 1) | kv -> kv)
             (List.filter (fun (k, _) -> k <> "deadline_ms") fields))
    | j -> j
  in
  let v1_tune =
    downgrade
      (Protocol.request_to_json
         (Protocol.Tune
            { id = "r1"; tenant = "t0"; spec = spec "swim"; deadline_ms = None }))
  in
  match Protocol.request_of_json v1_tune with
  | Ok (Protocol.Tune { id = "r1"; deadline_ms = None; _ }) -> ()
  | Ok _ -> Alcotest.fail "v1 tune decoded to something else"
  | Error e ->
      Alcotest.failf "v1 tune refused: %s" (Protocol.decode_error_to_string e)

let test_fingerprint () =
  let base = spec "swim" in
  checks "stable" (Protocol.fingerprint base) (Protocol.fingerprint (spec "swim"));
  let variants =
    [
      spec "lulesh";
      spec ~seed:2 "swim";
      spec ~algorithm:"fr" "swim";
      spec ~top_x:3 "swim";
      { base with Protocol.pool = 11 };
      { base with Protocol.platform = "snb" };
    ]
  in
  List.iter
    (fun v ->
      checkb "distinct" true
        (Protocol.fingerprint base <> Protocol.fingerprint v))
    variants

(* --- scheduler --------------------------------------------------------- *)

let member ?deadline id tenant = { Scheduler.id; tenant; deadline; payload = () }

let submit sched ?(tenant = "t") s id =
  Scheduler.submit sched ~spec:s ~fingerprint:(Protocol.fingerprint s)
    (member id tenant)

let outcome text = { Scheduler.text; speedup = 1.5; evaluations = 10 }

let test_scheduler_coalescing () =
  let sched = Scheduler.create ~max_queue:16 in
  let s = spec "swim" in
  (match submit sched s "a" with
  | Scheduler.Fresh -> ()
  | _ -> Alcotest.fail "first submit not Fresh");
  (match submit sched s "b" with
  | Scheduler.Joined { leader = "a" } -> ()
  | _ -> Alcotest.fail "second submit not Joined onto a");
  (* joining survives the group going in-flight *)
  (match Scheduler.next sched with
  | Some (_, fp) -> checks "fp" (Protocol.fingerprint s) fp
  | None -> Alcotest.fail "no group to run");
  (match submit sched s "c" with
  | Scheduler.Joined { leader = "a" } -> ()
  | _ -> Alcotest.fail "mid-run submit not Joined");
  let members =
    Scheduler.complete sched ~fingerprint:(Protocol.fingerprint s)
      (outcome "T\n")
  in
  check (Alcotest.list Alcotest.string) "submission order" [ "a"; "b"; "c" ]
    (List.map (fun m -> m.Scheduler.id) members);
  (* a resubmission is answered from the memo without queueing *)
  (match submit sched s "d" with
  | Scheduler.Memoized { text = "T\n"; _ } -> ()
  | _ -> Alcotest.fail "resubmit not Memoized");
  checkb "idle" true (Scheduler.idle sched);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "counters"
    [
      ("received", 4); ("admitted", 1); ("coalesced", 2); ("memoized", 1);
      ("rejected", 0); ("groups_completed", 1); ("queue_depth", 0);
      ("expired", 0); ("cancelled", 0);
    ]
    (Scheduler.counters sched)

let test_scheduler_admission () =
  let sched = Scheduler.create ~max_queue:2 in
  ignore (submit sched (spec "swim") "a");
  ignore (submit sched (spec "lulesh") "b");
  (match submit sched (spec "cl") "c" with
  | Scheduler.Refused (Protocol.Queue_full { limit = 2 }) -> ()
  | _ -> Alcotest.fail "third waiting request not refused");
  (* draining refuses everything, even known fingerprints *)
  Scheduler.drain sched;
  (match submit sched (spec "swim") "d" with
  | Scheduler.Refused Protocol.Draining -> ()
  | _ -> Alcotest.fail "post-drain submit not refused");
  checki "rejected" 2 (List.assoc "rejected" (Scheduler.counters sched))

let test_scheduler_fairness () =
  let sched = Scheduler.create ~max_queue:64 in
  (* tenant a floods four distinct searches, then b and c one each *)
  ignore (submit sched ~tenant:"a" (spec ~seed:1 "swim") "a1");
  ignore (submit sched ~tenant:"a" (spec ~seed:2 "swim") "a2");
  ignore (submit sched ~tenant:"a" (spec ~seed:3 "swim") "a3");
  ignore (submit sched ~tenant:"a" (spec ~seed:4 "swim") "a4");
  ignore (submit sched ~tenant:"b" (spec ~seed:1 "cl") "b1");
  ignore (submit sched ~tenant:"c" (spec ~seed:1 "amg") "c1");
  let order = ref [] in
  let rec drain_all () =
    match Scheduler.next sched with
    | None -> ()
    | Some (_, fp) ->
        let leader =
          match Scheduler.members sched ~fingerprint:fp with
          | m :: _ -> m.Scheduler.id
          | [] -> "?"
        in
        order := leader :: !order;
        ignore (Scheduler.complete sched ~fingerprint:fp (outcome "T\n"));
        drain_all ()
  in
  drain_all ();
  (* round-robin over tenants: the flooding tenant gets one slot per
     turn of the ring, so b1 and c1 run long before a's backlog clears *)
  check (Alcotest.list Alcotest.string) "round-robin order"
    [ "a1"; "b1"; "c1"; "a2"; "a3"; "a4" ]
    (List.rev !order)

let test_scheduler_drop () =
  let sched = Scheduler.create ~max_queue:8 in
  let s = spec "swim" in
  let fp = Protocol.fingerprint s in
  ignore (submit sched s "a");
  ignore (submit sched s "b");
  Scheduler.drop_member sched ~fingerprint:fp ~id:"a";
  checki "depth after drop" 1 (Scheduler.queue_depth sched);
  Scheduler.drop_member sched ~fingerprint:fp ~id:"b";
  (* last member gone while still queued: the group is cancelled *)
  checkb "idle" true (Scheduler.idle sched);
  checkb "nothing to run" true (Scheduler.next sched = None)

let test_scheduler_expire () =
  let sched = Scheduler.create ~max_queue:8 in
  let s1 = spec "swim" and s2 = spec "cl" in
  let fp1 = Protocol.fingerprint s1 and fp2 = Protocol.fingerprint s2 in
  ignore
    (Scheduler.submit sched ~spec:s1 ~fingerprint:fp1
       (member ~deadline:100.0 "a" "t"));
  ignore (Scheduler.submit sched ~spec:s1 ~fingerprint:fp1 (member "b" "t"));
  ignore
    (Scheduler.submit sched ~spec:s2 ~fingerprint:fp2
       (member ~deadline:50.0 "c" "t"));
  checkb "nothing due yet" true (Scheduler.expire sched ~now:10.0 = []);
  (* c expires while queued; its emptied group is dropped outright *)
  (match Scheduler.expire sched ~now:60.0 with
  | [ (fp, m) ] ->
      checks "expired fp" fp2 fp;
      checks "expired member" "c" m.Scheduler.id
  | l -> Alcotest.failf "expected 1 expiry, got %d" (List.length l));
  (match Scheduler.next sched with
  | Some (_, fp) -> checks "only s1 left" fp1 fp
  | None -> Alcotest.fail "s1 group vanished");
  checkb "no second group" true (Scheduler.next sched = None);
  (* a expires while its group runs; b keeps the group alive *)
  (match Scheduler.expire sched ~now:150.0 with
  | [ (fp, m) ] ->
      checks "expired fp" fp1 fp;
      checks "expired member" "a" m.Scheduler.id
  | l -> Alcotest.failf "expected 1 expiry, got %d" (List.length l));
  (match Scheduler.members sched ~fingerprint:fp1 with
  | [ m ] -> checks "survivor" "b" m.Scheduler.id
  | _ -> Alcotest.fail "running group lost its deadline-less member");
  ignore (Scheduler.complete sched ~fingerprint:fp1 (outcome "T\n"));
  checki "expired" 2 (List.assoc "expired" (Scheduler.counters sched));
  checki "queue empty" 0 (Scheduler.queue_depth sched)

let test_scheduler_cancel () =
  let sched = Scheduler.create ~max_queue:8 in
  let s = spec "swim" in
  let fp = Protocol.fingerprint s in
  ignore
    (Scheduler.submit sched ~spec:s ~fingerprint:fp
       (member ~deadline:100.0 "a" "t"));
  ignore (Scheduler.next sched);
  ignore (Scheduler.expire sched ~now:200.0);
  (* the running group lost everyone: the server cancels it at its next
     tick; nobody saw a result, so nothing is memoized *)
  checkb "empty but alive" true (Scheduler.members sched ~fingerprint:fp = []);
  checkb "still running" true (not (Scheduler.idle sched));
  checkb "no stragglers" true (Scheduler.cancel sched ~fingerprint:fp = []);
  checkb "gone" true (Scheduler.idle sched);
  checkb "not memoized" true (Scheduler.known sched ~fingerprint:fp = None);
  checki "cancelled" 1 (List.assoc "cancelled" (Scheduler.counters sched));
  match Scheduler.submit sched ~spec:s ~fingerprint:fp (member "b" "t") with
  | Scheduler.Fresh -> ()
  | _ -> Alcotest.fail "cancelled fingerprint not rerunnable"

let test_scheduler_remember () =
  let sched = Scheduler.create ~max_queue:4 in
  let s = spec "swim" in
  let fp = Protocol.fingerprint s in
  checkb "unknown before seeding" true (Scheduler.known sched ~fingerprint:fp = None);
  Scheduler.remember sched ~fingerprint:fp (outcome "T\n");
  (match Scheduler.known sched ~fingerprint:fp with
  | Some { Scheduler.text = "T\n"; _ } -> ()
  | _ -> Alcotest.fail "seeded memo not retrievable");
  (* restart recovery seeds the memo this way: a resubmission is
     answered without queueing anything *)
  match submit sched s "a" with
  | Scheduler.Memoized { text = "T\n"; _ } -> ()
  | _ -> Alcotest.fail "seeded memo not served on submit"

(* --- journal ------------------------------------------------------------ *)

let temp_journal () =
  let path = Filename.temp_file "funcy-journal" ".j" in
  Sys.remove path;
  path

let o1 = { Scheduler.text = "RESULT one\n"; speedup = 1.25; evaluations = 12 }

let write_journal path records =
  if Sys.file_exists path then Sys.remove path;
  let j = Journal.open_ path in
  List.iter (Journal.append j) records;
  Journal.close j

let test_journal_replay () =
  let path = temp_journal () in
  let s1 = spec "swim" and s2 = spec "lulesh" in
  let fp1 = Protocol.fingerprint s1 and fp2 = Protocol.fingerprint s2 in
  write_journal path
    [
      Journal.Boot;
      Journal.Accepted
        { id = "r1"; tenant = "t0"; fingerprint = fp1; spec = s1;
          deadline = Some 123.5 };
      Journal.Started { fingerprint = fp1 };
      Journal.Completed { fingerprint = fp1; outcome = o1 };
      Journal.Accepted
        { id = "r2"; tenant = "t1"; fingerprint = fp2; spec = s2;
          deadline = None };
      Journal.Started { fingerprint = fp2 };
    ];
  let r = Journal.load path in
  checki "boots" 1 r.Journal.boots;
  (* r1 completed: answered from the memo, not owed *)
  check
    (Alcotest.list Alcotest.string)
    "pending ids" [ "r2" ]
    (List.map (fun p -> p.Journal.p_id) r.Journal.pending);
  (match r.Journal.pending with
  | [ p ] ->
      checks "pending tenant" "t1" p.Journal.p_tenant;
      checks "pending fp" fp2 p.Journal.p_fingerprint;
      checkb "pending spec" true (p.Journal.p_spec = s2)
  | _ -> Alcotest.fail "pending shape");
  (match r.Journal.memo with
  | [ (fp, o) ] ->
      checks "memo fp" fp1 fp;
      checkb "memo outcome" true (o = o1)
  | _ -> Alcotest.fail "memo shape");
  (* fp2 was in flight when the log ended: the load witnesses the death *)
  checkb "crashes" true (r.Journal.crashes = [ (fp2, 1) ]);
  checkb "nothing poisoned" true (r.Journal.poisoned = [])

let test_journal_crashes () =
  let path = temp_journal () in
  let s = spec "swim" in
  let fp = Protocol.fingerprint s in
  let accepted =
    Journal.Accepted
      { id = "r1"; tenant = "t0"; fingerprint = fp; spec = s; deadline = None }
  in
  (* three incarnations each died mid-search: two witnessed by the next
     Boot, the third by the end of the log *)
  write_journal path
    [
      Journal.Boot; accepted; Journal.Started { fingerprint = fp };
      Journal.Boot; Journal.Started { fingerprint = fp };
      Journal.Boot; Journal.Started { fingerprint = fp };
    ];
  let r = Journal.load path in
  checki "boots" 3 r.Journal.boots;
  checkb "three crashes" true (r.Journal.crashes = [ (fp, 3) ]);
  checki "still owed" 1 (List.length r.Journal.pending);
  (* quarantine is itself journaled: after Poisoned the fingerprint is
     no longer owed and replay reports it as quarantined *)
  let j = Journal.open_ path in
  Journal.append j (Journal.Poisoned { fingerprint = fp; crashes = 3 });
  Journal.close j;
  let r = Journal.load path in
  checkb "poisoned" true (r.Journal.poisoned = [ (fp, 3) ]);
  checkb "no longer pending" true (r.Journal.pending = []);
  (* a deliberate cancellation is terminal, never a crash *)
  let path2 = temp_journal () in
  write_journal path2
    [
      Journal.Boot; accepted; Journal.Started { fingerprint = fp };
      Journal.Cancelled { fingerprint = fp };
    ];
  let r2 = Journal.load path2 in
  checkb "cancel is not a crash" true (r2.Journal.crashes = []);
  checkb "cancel clears the debt" true (r2.Journal.pending = [])

(* S4: the torn-tail law, at every byte offset.  A journal truncated at
   any byte must load as exactly the longest prefix of fully committed
   records — never an exception (a torn header is the one legal
   [Corrupt]), never a misparse. *)
let journal_truncation_property =
  let s1 = spec "swim" and s2 = spec "lulesh" in
  let fp1 = Protocol.fingerprint s1 and fp2 = Protocol.fingerprint s2 in
  let records =
    [
      Journal.Boot;
      Journal.Accepted
        { id = "r1"; tenant = "t0"; fingerprint = fp1; spec = s1;
          deadline = Some 42.0 };
      Journal.Started { fingerprint = fp1 };
      Journal.Completed { fingerprint = fp1; outcome = o1 };
      Journal.Boot;
      Journal.Accepted
        { id = "r2"; tenant = "t1"; fingerprint = fp2; spec = s2;
          deadline = None };
      Journal.Started { fingerprint = fp2 };
      Journal.Poisoned { fingerprint = fp2; crashes = 3 };
      Journal.Dropped { id = "r2" };
      Journal.Cancelled { fingerprint = fp1 };
      Journal.Failed { fingerprint = fp1 };
    ]
  in
  let line_len r =
    String.length (Ft_obs.Json.to_string (Journal.record_to_json r)) + 1
  in
  let header_len = String.length Journal.format_magic + 1 in
  let full = temp_journal () in
  write_journal full records;
  let bytes = In_channel.with_open_bin full In_channel.input_all in
  let total = String.length bytes in
  (* sanity: the offset arithmetic matches what append actually wrote *)
  assert (total = header_len + List.fold_left (fun a r -> a + line_len r) 0 records);
  let records_within k =
    let rec go off acc = function
      | [] -> List.rev acc
      | r :: rest ->
          let off = off + line_len r in
          if off <= k then go off (r :: acc) rest else List.rev acc
    in
    go header_len [] records
  in
  let torn = temp_journal () in
  let clean = temp_journal () in
  let prop k =
    Out_channel.with_open_bin torn (fun oc ->
        Out_channel.output_string oc (String.sub bytes 0 k));
    if k < header_len then
      (* the magic line itself is torn: refused loudly, not misread *)
      match Journal.load torn with
      | exception Journal.Corrupt _ -> true
      | _ -> false
    else begin
      write_journal clean (records_within k);
      Journal.load torn = Journal.load clean
    end
  in
  QCheck.Test.make ~count:500
    ~name:"journal truncated at any byte loads the longest valid prefix"
    QCheck.(int_range 0 total)
    prop

(* --- supervisor / client backoff laws ----------------------------------- *)

let test_supervisor_delays () =
  let c = { Supervisor.default_config with respawn_budget = 10; seed = 7 } in
  let d1 = Supervisor.delays c 10 in
  checki "length" 10 (List.length d1);
  checkb "deterministic" true (Supervisor.delays c 10 = d1);
  List.iteri
    (fun k d ->
      let base = c.Supervisor.backoff_base_s *. (2.0 ** float_of_int k) in
      checkb "capped" true (d <= c.Supervisor.backoff_cap_s +. 1e-9);
      checkb "at least half the exponential" true
        (d >= Float.min c.Supervisor.backoff_cap_s (0.5 *. base) -. 1e-9);
      checkb "at most 1.5x the exponential" true (d <= (1.5 *. base) +. 1e-9))
    d1;
  (* a different seed reshuffles the jitter, so respawning herds spread *)
  checkb "seed matters" true (Supervisor.delays { c with seed = 8 } 10 <> d1)

let test_client_backoff () =
  let d1 = Client.backoff_schedule ~seed:3 8 in
  checki "length" 8 (List.length d1);
  checkb "deterministic" true (Client.backoff_schedule ~seed:3 8 = d1);
  List.iteri
    (fun k d ->
      let base = 0.01 *. (2.0 ** float_of_int k) in
      checkb "capped" true (d <= 0.5 +. 1e-9);
      checkb "at least half the exponential" true
        (d >= Float.min 0.5 (0.5 *. base) -. 1e-9);
      checkb "at most 1.5x the exponential" true (d <= (1.5 *. base) +. 1e-9))
    d1;
  checkb "seed matters" true (Client.backoff_schedule ~seed:4 8 <> d1)

let suite =
  ( "serve",
    [
      Alcotest.test_case "framing roundtrip + clean eof" `Quick
        test_framing_roundtrip;
      Alcotest.test_case "framing torn frame" `Quick test_framing_torn;
      Alcotest.test_case "framing oversized prefix" `Quick
        test_framing_oversized;
      Alcotest.test_case "decoder reassembles split frames" `Quick
        test_decoder_reassembly;
      Alcotest.test_case "protocol json roundtrip" `Quick
        test_protocol_roundtrip;
      Alcotest.test_case "protocol version gate" `Quick
        test_protocol_version_gate;
      Alcotest.test_case "fingerprint canonicalization" `Quick
        test_fingerprint;
      Alcotest.test_case "scheduler single-flight coalescing" `Quick
        test_scheduler_coalescing;
      Alcotest.test_case "scheduler admission control" `Quick
        test_scheduler_admission;
      Alcotest.test_case "scheduler per-tenant round-robin" `Quick
        test_scheduler_fairness;
      Alcotest.test_case "scheduler drops vanished members" `Quick
        test_scheduler_drop;
      Alcotest.test_case "scheduler deadline sweep" `Quick
        test_scheduler_expire;
      Alcotest.test_case "scheduler cancels abandoned groups" `Quick
        test_scheduler_cancel;
      Alcotest.test_case "scheduler memo seeding (restart replay)" `Quick
        test_scheduler_remember;
      Alcotest.test_case "journal replay owes unfinished work" `Quick
        test_journal_replay;
      Alcotest.test_case "journal crash accounting and quarantine" `Quick
        test_journal_crashes;
      QCheck_alcotest.to_alcotest journal_truncation_property;
      Alcotest.test_case "supervisor backoff schedule law" `Quick
        test_supervisor_delays;
      Alcotest.test_case "client connect backoff law" `Quick
        test_client_backoff;
    ] )

(* --- end-to-end daemon tests (fork-legal binary only) ------------------ *)

(* A deterministic fake runner: [ticks] engine jobs of [tick_sleep]
   seconds each, result text derived from the spec.  Slow enough that
   the e2e tests can join searches mid-run. *)
let fake_runner ?(ticks = 40) ?(tick_sleep = 0.005) () =
  {
    Runner.validate =
      (fun s ->
        if s.Protocol.benchmark = "bad" then Error "unknown benchmark 'bad'"
        else Ok ());
    run =
      (fun s ~fingerprint:_ ~tick ->
        for _ = 1 to ticks do
          Unix.sleepf tick_sleep;
          tick ()
        done;
        Ok
          {
            Scheduler.text =
              Printf.sprintf "RESULT %s seed %d\n" s.Protocol.benchmark
                s.Protocol.seed;
            speedup = 1.5;
            evaluations = ticks;
          });
  }

let with_daemon ?(max_queue = 256) runner f =
  let socket_path = Filename.temp_file "funcy-serve" ".sock" in
  Sys.remove socket_path;
  match Unix.fork () with
  | 0 ->
      (* Child: serve until drained.  Unix._exit, never Stdlib.exit —
         the child inherited the parent's channel buffers (and
         Alcotest's at_exit) and must run neither. *)
      (try
         ignore
           (Server.serve
              { (Server.default_config ~socket_path) with max_queue;
                progress_every = 10 }
              runner)
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      Fun.protect ~finally:(fun () ->
          (match Client.shutdown ~retry_for:1.0 socket_path with
          | Ok () -> ()
          | Error _ -> ( try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()));
          ignore (Unix.waitpid [] pid);
          try Sys.remove socket_path with Sys_error _ -> ())
      @@ fun () ->
      (match Client.ping ~retry_for:10.0 socket_path with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "daemon never came up: %s" (Client.failure_to_string e));
      f socket_path

(* Raw parallel clients: open a connection and park the request, read
   the streamed responses later.  The daemon serves all of them
   concurrently; reading sequentially afterwards does not change what
   it did. *)
let park socket_path ?(tenant = "t0") ?deadline_ms s id =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  Protocol.write_request fd (Protocol.Tune { id; tenant; spec = s; deadline_ms });
  fd

let read_terminal fd =
  let rec go events =
    match Protocol.read_response fd with
    | Error (`Framing e) ->
        Alcotest.failf "stream died: %s" (Framing.error_to_string e)
    | Error (`Decode e) ->
        Alcotest.failf "undecodable: %s" (Protocol.decode_error_to_string e)
    | Ok ((Protocol.Admitted _ | Coalesced _ | Started _ | Progress _) as ev)
      ->
        go (ev :: events)
    | Ok terminal -> (List.rev events, terminal)
  in
  let r = go [] in
  Unix.close fd;
  r

let expect_result = function
  | _, Protocol.Result p -> p
  | _, Protocol.Rejected { reason; _ } ->
      Alcotest.failf "rejected: %s" (Protocol.reject_reason_to_string reason)
  | _ -> Alcotest.fail "no result"

let test_e2e_coalescing () =
  with_daemon (fake_runner ()) @@ fun sock ->
  let s = spec "swim" in
  let n = 8 in
  let fds =
    List.init n (fun i -> park sock s (Printf.sprintf "r%d" i))
  in
  let results = List.map (fun fd -> expect_result (read_terminal fd)) fds in
  let texts = List.map (fun p -> p.Protocol.text) results in
  List.iter (fun t -> checks "identical text" (List.hd texts) t) texts;
  checki "fresh results" 1
    (List.length
       (List.filter (fun p -> p.Protocol.origin = Protocol.Fresh) results));
  checki "coalesced results" (n - 1)
    (List.length
       (List.filter
          (fun p ->
            match p.Protocol.origin with
            | Protocol.Coalesced_with _ -> true
            | _ -> false)
          results));
  List.iter (fun p -> checki "group size" n p.Protocol.group_size) results;
  (* exactly one search ran: the daemon's own counters say so *)
  match Client.stats sock with
  | Ok counters ->
      checki "admitted" 1 (List.assoc "admitted" counters);
      checki "coalesced" (n - 1) (List.assoc "coalesced" counters);
      checki "groups_completed" 1 (List.assoc "groups_completed" counters)
  | Error e -> Alcotest.failf "stats failed: %s" (Client.failure_to_string e)

let test_e2e_midrun_join () =
  with_daemon (fake_runner ~ticks:120 ~tick_sleep:0.005 ()) @@ fun sock ->
  let s = spec "swim" in
  let leader = park sock s "leader" in
  (* wait until the search is actually running *)
  let rec await_started () =
    match Protocol.read_response leader with
    | Ok (Protocol.Started _) -> ()
    | Ok (Protocol.Admitted _) -> await_started ()
    | Ok _ | Error _ -> Alcotest.fail "leader did not reach Started"
  in
  await_started ();
  (* now join the in-flight search *)
  let joiner = park sock s "joiner" in
  let jp = expect_result (read_terminal joiner) in
  (match jp.Protocol.origin with
  | Protocol.Coalesced_with "leader" -> ()
  | o -> Alcotest.failf "joiner origin %s" (Protocol.origin_to_string o));
  checki "group of two" 2 jp.Protocol.group_size;
  let lp = expect_result (read_terminal leader) in
  checkb "leader fresh" true (lp.Protocol.origin = Protocol.Fresh);
  checks "same bytes" lp.Protocol.text jp.Protocol.text

(* Flooding tenant a queues five searches before tenant b submits one;
   round-robin must complete b's long before a's backlog.  Arrival
   times are compared, so the assertion survives a slow machine: if b
   were starved its result would arrive last, making the margin ~0. *)
let test_e2e_fairness () =
  with_daemon (fake_runner ~ticks:10 ~tick_sleep:0.005 ()) @@ fun sock ->
  let flood =
    List.init 5 (fun i ->
        park sock ~tenant:"a" (spec ~seed:(i + 1) "swim")
          (Printf.sprintf "a%d" i))
  in
  let b = park sock ~tenant:"b" (spec ~seed:1 "cl") "b0" in
  ignore (expect_result (read_terminal b));
  let t_b = Unix.gettimeofday () in
  List.iter (fun fd -> ignore (expect_result (read_terminal fd))) flood;
  let t_last_a = Unix.gettimeofday () in
  checkb "b finished well before the flood cleared" true
    (t_last_a -. t_b > 0.05)

let test_e2e_rejections () =
  with_daemon ~max_queue:2 (fake_runner ~ticks:60 ~tick_sleep:0.005 ())
  @@ fun sock ->
  (* unsupported spec: typed Unsupported reject *)
  (match Client.tune ~socket_path:sock ~id:"x" ~tenant:"t" (spec "bad") with
  | Error (Client.Rejected (Protocol.Unsupported _)) -> ()
  | _ -> Alcotest.fail "invalid spec not rejected as unsupported");
  (* backpressure: two waiting requests fill the queue; a third bounces *)
  let w1 = park sock (spec ~seed:1 "swim") "w1" in
  let w2 = park sock (spec ~seed:2 "swim") "w2" in
  ignore (Unix.select [] [] [] 0.1);
  (match Client.tune ~socket_path:sock ~id:"w3" ~tenant:"t" (spec ~seed:3 "swim") with
  | Error (Client.Rejected (Protocol.Queue_full { limit = 2 })) -> ()
  | Ok _ -> Alcotest.fail "over-quota request admitted"
  | Error f -> Alcotest.failf "wrong failure: %s" (Client.failure_to_string f));
  (* raw protocol garbage: typed Malformed reject, connection survives
     server-side bookkeeping *)
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  Framing.write_bytes fd (Bytes.of_string "this is not json");
  (match Protocol.read_response fd with
  | Ok (Protocol.Rejected { reason = Protocol.Malformed _; _ }) -> ()
  | _ -> Alcotest.fail "garbage frame not rejected as malformed");
  Unix.close fd;
  (* wrong protocol version: typed Bad_version reject *)
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  Framing.write_bytes fd
    (Bytes.of_string (Json.to_string
       (Json.Obj [ ("v", Json.Int 9); ("kind", Json.String "ping") ])));
  (match Protocol.read_response fd with
  | Ok (Protocol.Rejected { reason = Protocol.Bad_version { got = 9 }; _ }) ->
      ()
  | _ -> Alcotest.fail "wrong version not rejected as bad_version");
  Unix.close fd;
  ignore (expect_result (read_terminal w1));
  ignore (expect_result (read_terminal w2))

let test_e2e_drain () =
  with_daemon (fake_runner ~ticks:80 ~tick_sleep:0.005 ()) @@ fun sock ->
  let running = park sock (spec ~seed:1 "swim") "r0" in
  ignore (Unix.select [] [] [] 0.1);
  (* shutdown while the search runs: acknowledged immediately ... *)
  (match Client.shutdown sock with
  | Ok () -> ()
  | Error e -> Alcotest.failf "shutdown failed: %s" (Client.failure_to_string e));
  (* ... new work is refused as draining ... *)
  (match Client.tune ~socket_path:sock ~id:"late" ~tenant:"t" (spec ~seed:2 "swim") with
  | Error (Client.Rejected Protocol.Draining) -> ()
  | Error (Client.Transport _) ->
      (* the daemon may already have exited — equally a refusal *)
      ()
  | _ -> Alcotest.fail "post-shutdown request not refused");
  (* ... and the in-flight search still completes for its client *)
  let p = expect_result (read_terminal running) in
  checks "drained result" "RESULT swim seed 1\n" p.Protocol.text

(* Like [with_daemon], but the runner (and its engine) is built only in
   the daemon child, so the parent stays domain-free and fork-legal. *)
let with_daemon_lazy make_runner f =
  let socket_path = Filename.temp_file "funcy-serve" ".sock" in
  Sys.remove socket_path;
  match Unix.fork () with
  | 0 ->
      (try
         ignore
           (Server.serve (Server.default_config ~socket_path) (make_runner ()))
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      Fun.protect ~finally:(fun () ->
          (match Client.shutdown ~retry_for:1.0 socket_path with
          | Ok () -> ()
          | Error _ -> ( try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()));
          ignore (Unix.waitpid [] pid);
          try Sys.remove socket_path with Sys_error _ -> ())
      @@ fun () ->
      (match Client.ping ~retry_for:30.0 socket_path with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "daemon never came up: %s" (Client.failure_to_string e));
      f socket_path

(* The serve contract: a served result is byte-identical to the same
   search run solo, and a memoized replay returns the same bytes with
   origin=cached.  Runs the real runner (engine jobs=1, fork-legal). *)
let test_e2e_byte_identity () =
  let real () = Runner.make ~engine:(Ft_engine.Engine.create ~jobs:1 ()) in
  let s =
    { Protocol.benchmark = "swim"; platform = "bdw"; algorithm = "cfr";
      seed = 42; pool = 80; top_x = None }
  in
  let served, cached =
    with_daemon_lazy real @@ fun sock ->
    let p1 =
      match Client.tune ~socket_path:sock ~id:"c1" ~tenant:"t" s with
      | Ok p -> p
      | Error e -> Alcotest.failf "tune failed: %s" (Client.failure_to_string e)
    in
    let p2 =
      match Client.tune ~socket_path:sock ~id:"c2" ~tenant:"t" s with
      | Ok p -> p
      | Error e -> Alcotest.failf "tune failed: %s" (Client.failure_to_string e)
    in
    (p1, p2)
  in
  checkb "replay cached" true (cached.Protocol.origin = Protocol.Cached);
  checks "replay bytes" served.Protocol.text cached.Protocol.text;
  (* solo reference, computed only after every fork is done *)
  let program = Option.get (Ft_suite.Suite.find "swim") in
  let platform = Ft_prog.Platform.Broadwell in
  let session =
    Funcytuner.Tuner.make_session ~pool_size:80
      ~engine:(Ft_engine.Engine.create ~jobs:1 ())
      ~platform ~program
      ~input:(Ft_suite.Suite.tuning_input platform program)
      ~seed:42 ()
  in
  let solo =
    Funcytuner.Result.render
      (Funcytuner.Tuner.run_cfr ~top_x:Funcytuner.Cfr.default_top_x session)
  in
  checks "served = solo bytes" solo served.Protocol.text

(* A small in-process loadgen burst against a fake daemon: zero errors,
   zero divergence, coalescing doing its job under zipfian skew. *)
let test_e2e_loadgen () =
  with_daemon (fake_runner ~ticks:5 ~tick_sleep:0.002 ()) @@ fun sock ->
  let config =
    {
      (Ft_serve.Loadgen.default_config ~socket_path:sock) with
      Ft_serve.Loadgen.clients = 80;
      concurrency = 20;
      benchmarks = [ "swim"; "cl"; "amg" ];
      seeds_per_benchmark = 2;
    }
  in
  let o = Ft_serve.Loadgen.run config in
  checki "all completed" 80 Ft_serve.Loadgen.(o.completed);
  checki "no errors" 0 Ft_serve.Loadgen.(o.errors);
  checki "no divergence" 0 Ft_serve.Loadgen.(o.inconsistent);
  checkb "coalescing helped" true (Ft_serve.Loadgen.(o.coalesce_rate) > 0.5)

(* --- crash recovery, deadlines, cancellation (e2e) ---------------------- *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let reap pid = snd (Unix.waitpid [] pid)

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "signalled %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s

let expect_killed pid =
  match reap pid with
  | Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | st -> Alcotest.failf "daemon should have been SIGKILLed, %s" (status_to_string st)

(* A daemon with a durable journal (and optionally the chaos hook),
   forked so the parent can watch it die and boot a successor on the
   same state directory. *)
let fork_state_daemon ?die_after ~socket_path ~state_dir runner =
  match Unix.fork () with
  | 0 ->
      (try
         ignore
           (Server.serve
              {
                (Server.default_config ~socket_path) with
                state_dir = Some state_dir;
                die_after_requests = die_after;
                progress_every = 10;
              }
              runner)
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid -> pid

let stop_daemon ~socket_path pid =
  (match Client.shutdown ~retry_for:5.0 socket_path with
  | Ok () -> ()
  | Error _ -> ( try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()));
  ignore (reap pid)

(* The tentpole, end to end: the daemon journals an accepted request,
   SIGKILLs itself at the ack boundary (chaos hook), and a successor on
   the same state directory replays the debt, runs it unattended, and
   answers the re-sent id with the bytes the dead daemon owed. *)
let test_e2e_kill_restart () =
  let dir = temp_dir "funcy-recover" in
  let socket_path = Filename.concat dir "sock" in
  let state_dir = Filename.concat dir "state" in
  let runner = fake_runner ~ticks:20 ~tick_sleep:0.005 () in
  let s = spec ~seed:7 "swim" in
  let pid1 = fork_state_daemon ~die_after:1 ~socket_path ~state_dir runner in
  (match Client.tune ~retry_for:10.0 ~socket_path ~id:"k1" ~tenant:"t0" s with
  | Error (Client.Transport _) -> ()
  | Ok _ -> Alcotest.fail "chaos daemon answered instead of dying"
  | Error f -> Alcotest.failf "wrong failure: %s" (Client.failure_to_string f));
  expect_killed pid1;
  (* the journal survived the corpse and owes exactly k1 *)
  let r = Journal.load (Filename.concat state_dir "journal") in
  checki "boots" 1 r.Journal.boots;
  (match r.Journal.pending with
  | [ p ] -> checks "owed id" "k1" p.Journal.p_id
  | ps -> Alcotest.failf "expected 1 pending, got %d" (List.length ps));
  let pid2 = fork_state_daemon ~socket_path ~state_dir runner in
  Fun.protect ~finally:(fun () -> stop_daemon ~socket_path pid2) @@ fun () ->
  (match Client.tune ~retry_for:10.0 ~socket_path ~id:"k1" ~tenant:"t0" s with
  | Ok p -> checks "recovered result" "RESULT swim seed 7\n" p.Protocol.text
  | Error f -> Alcotest.failf "resend failed: %s" (Client.failure_to_string f));
  match Client.stats socket_path with
  | Ok cs ->
      checki "restarts" 1 (List.assoc "restarts" cs);
      checki "replayed" 1 (List.assoc "replayed" cs)
  | Error e -> Alcotest.failf "stats failed: %s" (Client.failure_to_string e)

(* A queued request whose deadline lapses while another search holds the
   engine gets the typed [Deadline_exceeded] answer mid-run. *)
let test_e2e_deadline () =
  with_daemon (fake_runner ~ticks:100 ~tick_sleep:0.01 ()) @@ fun sock ->
  let busy = park sock (spec ~seed:1 "swim") "busy" in
  ignore (Unix.select [] [] [] 0.1);
  let doomed = park sock ~deadline_ms:80 (spec ~seed:2 "lulesh") "doomed" in
  (match read_terminal doomed with
  | _, Protocol.Rejected { id = "doomed"; reason = Protocol.Deadline_exceeded }
    -> ()
  | _, t ->
      Alcotest.failf "expected deadline rejection, got %s"
        (match t with
        | Protocol.Result _ -> "a result"
        | Protocol.Rejected { reason; _ } ->
            Protocol.reject_reason_to_string reason
        | _ -> "another response"));
  ignore (expect_result (read_terminal busy));
  match Client.stats sock with
  | Ok cs -> checki "expired" 1 (List.assoc "expired" cs)
  | Error e -> Alcotest.failf "stats failed: %s" (Client.failure_to_string e)

(* A running search whose only subscriber expires is cancelled at the
   next evaluation boundary; the daemon stays healthy. *)
let test_e2e_cancel_expired () =
  with_daemon (fake_runner ~ticks:100 ~tick_sleep:0.005 ()) @@ fun sock ->
  let fd = park sock ~deadline_ms:100 (spec ~seed:3 "swim") "solo" in
  (match read_terminal fd with
  | _, Protocol.Rejected { reason = Protocol.Deadline_exceeded; _ } -> ()
  | _ -> Alcotest.fail "expired subscriber not answered with the deadline");
  (* the abandoned search did not wedge the daemon *)
  (match Client.tune ~socket_path:sock ~id:"after" ~tenant:"t1" (spec ~seed:4 "cl") with
  | Ok p -> checks "next result" "RESULT cl seed 4\n" p.Protocol.text
  | Error f -> Alcotest.failf "follow-up failed: %s" (Client.failure_to_string f));
  match Client.stats sock with
  | Ok cs ->
      checki "expired" 1 (List.assoc "expired" cs);
      checki "cancelled" 1 (List.assoc "cancelled" cs)
  | Error e -> Alcotest.failf "stats failed: %s" (Client.failure_to_string e)

(* Same cancellation path via disconnection: the sole subscriber's
   socket closes mid-search. *)
let test_e2e_cancel_disconnect () =
  with_daemon (fake_runner ~ticks:100 ~tick_sleep:0.005 ()) @@ fun sock ->
  let fd = park sock (spec ~seed:5 "swim") "ghost" in
  let rec await_started () =
    match Protocol.read_response fd with
    | Ok (Protocol.Started _) -> ()
    | Ok _ -> await_started ()
    | Error _ -> Alcotest.fail "ghost never reached Started"
  in
  await_started ();
  Unix.close fd;
  (match Client.tune ~socket_path:sock ~id:"after" ~tenant:"t1" (spec ~seed:6 "cl") with
  | Ok p -> checks "next result" "RESULT cl seed 6\n" p.Protocol.text
  | Error f -> Alcotest.failf "follow-up failed: %s" (Client.failure_to_string f));
  match Client.stats sock with
  | Ok cs -> checki "cancelled" 1 (List.assoc "cancelled" cs)
  | Error e -> Alcotest.failf "stats failed: %s" (Client.failure_to_string e)

(* S1: a SIGKILLed daemon leaves its socket file behind; a successor
   probes the corpse and reclaims the path — but never steals a live
   daemon's socket. *)
let test_e2e_stale_socket () =
  let dir = temp_dir "funcy-stale" in
  let socket_path = Filename.concat dir "sock" in
  let runner = fake_runner ~ticks:5 ~tick_sleep:0.002 () in
  let fork_plain () =
    match Unix.fork () with
    | 0 ->
        (try
           ignore
             (Server.serve
                { (Server.default_config ~socket_path) with progress_every = 10 }
                runner)
         with _ -> Unix._exit 1);
        Unix._exit 0
    | pid -> pid
  in
  let pid1 = fork_plain () in
  (match Client.ping ~retry_for:10.0 socket_path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "daemon 1 never up: %s" (Client.failure_to_string e));
  Unix.kill pid1 Sys.sigkill;
  expect_killed pid1;
  checkb "socket file left behind" true (Sys.file_exists socket_path);
  let pid2 = fork_plain () in
  Fun.protect ~finally:(fun () -> stop_daemon ~socket_path pid2) @@ fun () ->
  (match Client.ping ~retry_for:10.0 socket_path with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "stale socket not reclaimed: %s" (Client.failure_to_string e));
  (* a third daemon probes, finds daemon 2 alive, and refuses *)
  let pid3 = fork_plain () in
  (match reap pid3 with
  | Unix.WEXITED 1 -> ()
  | st -> Alcotest.failf "live socket stolen (%s)" (status_to_string st));
  (* ... without harming the live daemon *)
  match Client.tune ~socket_path ~id:"s1" ~tenant:"t" (spec ~seed:8 "swim") with
  | Ok p -> checks "survivor result" "RESULT swim seed 8\n" p.Protocol.text
  | Error f -> Alcotest.failf "daemon 2 damaged: %s" (Client.failure_to_string f)

(* Poison quarantine: a spec that kills the daemon every time it runs is
   condemned by journal crash accounting after 3 deaths (two of them
   unattended replay crashes) and answered with the typed rejection,
   leaving the daemon healthy for everyone else. *)
let test_e2e_poison () =
  let dir = temp_dir "funcy-poison" in
  let socket_path = Filename.concat dir "sock" in
  let state_dir = Filename.concat dir "state" in
  let base = fake_runner ~ticks:3 ~tick_sleep:0.002 () in
  let runner =
    {
      base with
      Runner.run =
        (fun s ~fingerprint ~tick ->
          if s.Protocol.benchmark = "cl" then
            Unix.kill (Unix.getpid ()) Sys.sigkill;
          base.Runner.run s ~fingerprint ~tick);
    }
  in
  let bad = spec ~seed:1 "cl" and good = spec ~seed:2 "swim" in
  (* boot 1: the poison spec is accepted, then kills the daemon *)
  let pid1 = fork_state_daemon ~socket_path ~state_dir runner in
  (match Client.tune ~retry_for:10.0 ~socket_path ~id:"p1" ~tenant:"t0" bad with
  | Error (Client.Transport _) -> ()
  | _ -> Alcotest.fail "poison spec did not kill the daemon");
  expect_killed pid1;
  (* boots 2 and 3: replay re-runs the ghost unattended and dies again *)
  expect_killed (fork_state_daemon ~socket_path ~state_dir runner);
  expect_killed (fork_state_daemon ~socket_path ~state_dir runner);
  (* boot 4: three crashes on record — quarantined, daemon survives *)
  let pid4 = fork_state_daemon ~socket_path ~state_dir runner in
  Fun.protect ~finally:(fun () -> stop_daemon ~socket_path pid4) @@ fun () ->
  (match Client.tune ~retry_for:10.0 ~socket_path ~id:"p1" ~tenant:"t0" bad with
  | Error (Client.Rejected (Protocol.Poisoned { crashes = 3 })) -> ()
  | Ok _ -> Alcotest.fail "poisoned spec served a result"
  | Error f -> Alcotest.failf "wrong answer: %s" (Client.failure_to_string f));
  (match Client.tune ~socket_path ~id:"g1" ~tenant:"t0" good with
  | Ok p -> checks "good spec unharmed" "RESULT swim seed 2\n" p.Protocol.text
  | Error f -> Alcotest.failf "good spec failed: %s" (Client.failure_to_string f));
  match Client.stats socket_path with
  | Ok cs ->
      checki "poisoned" 1 (List.assoc "poisoned" cs);
      checki "restarts" 3 (List.assoc "restarts" cs)
  | Error e -> Alcotest.failf "stats failed: %s" (Client.failure_to_string e)

(* S4b: the full oracle on a real search — supervised respawns, a kill
   at the ack boundary, a SIGKILL between evaluations (checkpoint
   resume), a crash-looping poison spec, and solo byte-equivalence. *)
let test_e2e_servecheck () =
  let scratch = temp_dir "funcy-servecheck" in
  let make_runner ~state_dir =
    Runner.make_durable
      ~make_engine:(fun ?cache ?quarantine ?checkpoint () ->
        Ft_engine.Engine.create ~jobs:1 ?cache ?quarantine ?checkpoint ())
      ~state_dir ~checkpoint_every:4 ()
  in
  let s =
    { Protocol.benchmark = "swim"; platform = "bdw"; algorithm = "cfr";
      seed = 11; pool = 40; top_x = None }
  in
  let o =
    Ft_serve.Servecheck.run ~kill_points:[ 1 ] ~mid_run_tick:9 ~scratch
      ~make_runner
      ~specs:[ ("sv-1", "t0", s) ]
      ~poison:("sv-p", "t0", { s with Protocol.benchmark = "cl"; seed = 12 })
      ()
  in
  if not (Ft_serve.Servecheck.passed o) then
    Alcotest.failf "servecheck failed:\n%s" (Ft_serve.Servecheck.render o)

let suite_e2e =
  ( "serve-e2e",
    [
      (* Forks a reader, so it lives in the fork-legal binary despite
         being a framing-layer test. *)
      Alcotest.test_case "write_all completes across EAGAIN" `Quick
        test_write_all_nonblocking;
      Alcotest.test_case "single-flight coalescing over the wire" `Quick
        test_e2e_coalescing;
      Alcotest.test_case "mid-run join of an in-flight search" `Quick
        test_e2e_midrun_join;
      Alcotest.test_case "per-tenant fairness under flooding" `Quick
        test_e2e_fairness;
      Alcotest.test_case "typed rejections (unsupported/backpressure/\
                          malformed/version)" `Quick test_e2e_rejections;
      Alcotest.test_case "graceful drain on shutdown" `Quick test_e2e_drain;
      Alcotest.test_case "served result byte-identical to solo tune" `Quick
        test_e2e_byte_identity;
      Alcotest.test_case "loadgen burst: zero errors, coalesced" `Quick
        test_e2e_loadgen;
      Alcotest.test_case "kill at ack, restart replays the journal" `Quick
        test_e2e_kill_restart;
      Alcotest.test_case "queued request expires with typed rejection" `Quick
        test_e2e_deadline;
      Alcotest.test_case "expired sole subscriber cancels the search" `Quick
        test_e2e_cancel_expired;
      Alcotest.test_case "disconnected sole subscriber cancels the search"
        `Quick test_e2e_cancel_disconnect;
      Alcotest.test_case "stale socket reclaimed, live socket refused" `Quick
        test_e2e_stale_socket;
      Alcotest.test_case "crash-looping spec is quarantined" `Quick
        test_e2e_poison;
      Alcotest.test_case "kill-restart equivalence oracle (real search)"
        `Quick test_e2e_servecheck;
    ] )
