(* Tests for the serving stack, bottom-up: Framing (wire format and the
   incremental decoder), Protocol (JSON codecs, version gate), Scheduler
   (coalescing / fairness / admission as pure state), and — in
   [suite_e2e], registered only in the fork-legal test binary — a real
   daemon exercised over its socket: single-flight coalescing under
   concurrency, mid-run joins, per-tenant fairness, backpressure,
   drain semantics, and byte-identity of served results against a solo
   search. *)

module Framing = Ft_framing.Framing
module Protocol = Ft_serve.Protocol
module Scheduler = Ft_serve.Scheduler
module Runner = Ft_serve.Runner
module Server = Ft_serve.Server
module Client = Ft_serve.Client
module Json = Ft_obs.Json

let check = Alcotest.check
let checki = check Alcotest.int
let checks = check Alcotest.string
let checkb = check Alcotest.bool

(* --- framing ----------------------------------------------------------- *)

let sockpair () =
  let a, b = Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (a, b)

let test_framing_roundtrip () =
  let a, b = sockpair () in
  let payloads = [ ""; "x"; String.make 70000 'q'; "{\"k\":1}" ] in
  List.iter (fun p -> Framing.write_bytes a (Bytes.of_string p)) payloads;
  List.iter
    (fun expected ->
      match Framing.read_bytes b with
      | Ok got -> checks "payload" expected (Bytes.to_string got)
      | Error e -> Alcotest.failf "read failed: %s" (Framing.error_to_string e))
    payloads;
  Unix.close a;
  (match Framing.read_bytes b with
  | Error Framing.Eof -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected clean Eof after close");
  Unix.close b

let test_framing_torn () =
  let a, b = sockpair () in
  (* a full header promising 100 bytes, then only 10, then death *)
  let header = Bytes.create 8 in
  Bytes.set_int64_be header 0 100L;
  ignore (Unix.write a header 0 8);
  ignore (Unix.write_substring a (String.make 10 'z') 0 10);
  Unix.close a;
  (match Framing.read_bytes b with
  | Error (Framing.Torn { got = 10; expected = 100; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Framing.error_to_string e)
  | Ok _ -> Alcotest.fail "torn frame read succeeded");
  Unix.close b

let test_framing_oversized () =
  let a, b = sockpair () in
  let header = Bytes.create 8 in
  Bytes.set_int64_be header 0 (Int64.of_int (10 * 1024 * 1024));
  ignore (Unix.write a header 0 8);
  (match Framing.read_bytes ~max_bytes:1024 b with
  | Error (Framing.Oversized { claimed; limit = 1024 }) ->
      checki "claimed" (10 * 1024 * 1024) claimed
  | Error e -> Alcotest.failf "wrong error: %s" (Framing.error_to_string e)
  | Ok _ -> Alcotest.fail "oversized frame read succeeded");
  Unix.close a;
  Unix.close b

(* The decoder must reassemble frames from arbitrarily fragmented reads:
   drip a 3-frame stream through a nonblocking socket one odd-sized
   chunk at a time. *)
let test_decoder_reassembly () =
  let a, b = sockpair () in
  Unix.set_nonblock b;
  let payloads = [ "alpha"; String.make 9000 'w'; "" ] in
  let buf = Buffer.create 16384 in
  List.iter
    (fun p ->
      let h = Bytes.create 8 in
      Bytes.set_int64_be h 0 (Int64.of_int (String.length p));
      Buffer.add_bytes buf h;
      Buffer.add_string buf p)
    payloads;
  let stream = Buffer.contents buf in
  let dec = Framing.Decoder.create () in
  let got = ref [] in
  let closed = ref false in
  let pos = ref 0 in
  while not !closed do
    (if !pos < String.length stream then begin
       let n = min 577 (String.length stream - !pos) in
       ignore (Unix.write_substring a stream !pos n);
       pos := !pos + n;
       if !pos >= String.length stream then Unix.close a
     end);
    let { Framing.Decoder.frames; state } = Framing.Decoder.pump dec b in
    got := !got @ List.map Bytes.to_string frames;
    match state with
    | `Open -> ()
    | `Closed -> closed := true
    | `Error e -> Alcotest.failf "decoder error: %s" (Framing.error_to_string e)
  done;
  check (Alcotest.list Alcotest.string) "frames" payloads !got;
  Unix.close b

(* --- protocol ---------------------------------------------------------- *)

let spec ?(algorithm = "cfr") ?(seed = 1) ?top_x benchmark =
  { Protocol.benchmark; platform = "bdw"; algorithm; seed; pool = 10; top_x }

let roundtrip_request r =
  match Protocol.request_of_json (Protocol.request_to_json r) with
  | Ok r' -> checkb "request roundtrip" true (r = r')
  | Error e -> Alcotest.failf "decode failed: %s" (Protocol.decode_error_to_string e)

let roundtrip_response r =
  match Protocol.response_of_json (Protocol.response_to_json r) with
  | Ok r' -> checkb "response roundtrip" true (r = r')
  | Error e -> Alcotest.failf "decode failed: %s" (Protocol.decode_error_to_string e)

let test_protocol_roundtrip () =
  List.iter roundtrip_request
    [
      Protocol.Tune { id = "r1"; tenant = "t0"; spec = spec "swim" };
      Protocol.Tune
        { id = "r2"; tenant = "t1"; spec = spec ~top_x:5 ~seed:9 "lulesh" };
      Protocol.Ping;
      Protocol.Stats;
      Protocol.Shutdown;
    ];
  List.iter roundtrip_response
    [
      Protocol.Admitted { id = "r1"; queue_depth = 3 };
      Protocol.Coalesced { id = "r2"; leader = "r1" };
      Protocol.Started { id = "r1" };
      Protocol.Progress { id = "r1"; ticks = 50 };
      Protocol.Result
        {
          id = "r1";
          fingerprint = "abc";
          origin = Protocol.Fresh;
          group_size = 4;
          speedup = 1.25;
          evaluations = 100;
          run_s = 0.5;
          text = "CFR: speedup 1.250\n  line two\n";
        };
      Protocol.Result
        {
          id = "r2";
          fingerprint = "abc";
          origin = Protocol.Coalesced_with "r1";
          group_size = 4;
          speedup = 1.25;
          evaluations = 100;
          run_s = 0.5;
          text = "t\n";
        };
      Protocol.Rejected
        { id = "r3"; reason = Protocol.Queue_full { limit = 64 } };
      Protocol.Rejected { id = "r4"; reason = Protocol.Draining };
      Protocol.Rejected
        { id = "r5"; reason = Protocol.Unsupported "unknown benchmark 'x'" };
      Protocol.Rejected { id = "r6"; reason = Protocol.Bad_version { got = 9 } };
      Protocol.Rejected { id = "r7"; reason = Protocol.Malformed "not json" };
      Protocol.Server_error { id = "r8"; message = "boom" };
      Protocol.Pong;
      Protocol.Stats_reply [ ("received", 10); ("admitted", 2) ];
      Protocol.Bye;
    ]

let test_protocol_version_gate () =
  let wrong = Json.Obj [ ("v", Json.Int 99); ("kind", Json.String "ping") ] in
  (match Protocol.request_of_json wrong with
  | Error (Protocol.Version_mismatch { got = 99 }) -> ()
  | _ -> Alcotest.fail "v=99 not flagged as version mismatch");
  let missing = Json.Obj [ ("kind", Json.String "ping") ] in
  (match Protocol.request_of_json missing with
  | Error (Protocol.Malformed_frame _) -> ()
  | _ -> Alcotest.fail "missing v not flagged as malformed");
  match Protocol.request_of_frame (Bytes.of_string "not json at all") with
  | Error (Protocol.Malformed_frame _) -> ()
  | _ -> Alcotest.fail "garbage frame not flagged as malformed"

let test_fingerprint () =
  let base = spec "swim" in
  checks "stable" (Protocol.fingerprint base) (Protocol.fingerprint (spec "swim"));
  let variants =
    [
      spec "lulesh";
      spec ~seed:2 "swim";
      spec ~algorithm:"fr" "swim";
      spec ~top_x:3 "swim";
      { base with Protocol.pool = 11 };
      { base with Protocol.platform = "snb" };
    ]
  in
  List.iter
    (fun v ->
      checkb "distinct" true
        (Protocol.fingerprint base <> Protocol.fingerprint v))
    variants

(* --- scheduler --------------------------------------------------------- *)

let member id tenant = { Scheduler.id; tenant; payload = () }

let submit sched ?(tenant = "t") s id =
  Scheduler.submit sched ~spec:s ~fingerprint:(Protocol.fingerprint s)
    (member id tenant)

let outcome text = { Scheduler.text; speedup = 1.5; evaluations = 10 }

let test_scheduler_coalescing () =
  let sched = Scheduler.create ~max_queue:16 in
  let s = spec "swim" in
  (match submit sched s "a" with
  | Scheduler.Fresh -> ()
  | _ -> Alcotest.fail "first submit not Fresh");
  (match submit sched s "b" with
  | Scheduler.Joined { leader = "a" } -> ()
  | _ -> Alcotest.fail "second submit not Joined onto a");
  (* joining survives the group going in-flight *)
  (match Scheduler.next sched with
  | Some (_, fp) -> checks "fp" (Protocol.fingerprint s) fp
  | None -> Alcotest.fail "no group to run");
  (match submit sched s "c" with
  | Scheduler.Joined { leader = "a" } -> ()
  | _ -> Alcotest.fail "mid-run submit not Joined");
  let members =
    Scheduler.complete sched ~fingerprint:(Protocol.fingerprint s)
      (outcome "T\n")
  in
  check (Alcotest.list Alcotest.string) "submission order" [ "a"; "b"; "c" ]
    (List.map (fun m -> m.Scheduler.id) members);
  (* a resubmission is answered from the memo without queueing *)
  (match submit sched s "d" with
  | Scheduler.Memoized { text = "T\n"; _ } -> ()
  | _ -> Alcotest.fail "resubmit not Memoized");
  checkb "idle" true (Scheduler.idle sched);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "counters"
    [
      ("received", 4); ("admitted", 1); ("coalesced", 2); ("memoized", 1);
      ("rejected", 0); ("groups_completed", 1); ("queue_depth", 0);
    ]
    (Scheduler.counters sched)

let test_scheduler_admission () =
  let sched = Scheduler.create ~max_queue:2 in
  ignore (submit sched (spec "swim") "a");
  ignore (submit sched (spec "lulesh") "b");
  (match submit sched (spec "cl") "c" with
  | Scheduler.Refused (Protocol.Queue_full { limit = 2 }) -> ()
  | _ -> Alcotest.fail "third waiting request not refused");
  (* draining refuses everything, even known fingerprints *)
  Scheduler.drain sched;
  (match submit sched (spec "swim") "d" with
  | Scheduler.Refused Protocol.Draining -> ()
  | _ -> Alcotest.fail "post-drain submit not refused");
  checki "rejected" 2 (List.assoc "rejected" (Scheduler.counters sched))

let test_scheduler_fairness () =
  let sched = Scheduler.create ~max_queue:64 in
  (* tenant a floods four distinct searches, then b and c one each *)
  ignore (submit sched ~tenant:"a" (spec ~seed:1 "swim") "a1");
  ignore (submit sched ~tenant:"a" (spec ~seed:2 "swim") "a2");
  ignore (submit sched ~tenant:"a" (spec ~seed:3 "swim") "a3");
  ignore (submit sched ~tenant:"a" (spec ~seed:4 "swim") "a4");
  ignore (submit sched ~tenant:"b" (spec ~seed:1 "cl") "b1");
  ignore (submit sched ~tenant:"c" (spec ~seed:1 "amg") "c1");
  let order = ref [] in
  let rec drain_all () =
    match Scheduler.next sched with
    | None -> ()
    | Some (_, fp) ->
        let leader =
          match Scheduler.members sched ~fingerprint:fp with
          | m :: _ -> m.Scheduler.id
          | [] -> "?"
        in
        order := leader :: !order;
        ignore (Scheduler.complete sched ~fingerprint:fp (outcome "T\n"));
        drain_all ()
  in
  drain_all ();
  (* round-robin over tenants: the flooding tenant gets one slot per
     turn of the ring, so b1 and c1 run long before a's backlog clears *)
  check (Alcotest.list Alcotest.string) "round-robin order"
    [ "a1"; "b1"; "c1"; "a2"; "a3"; "a4" ]
    (List.rev !order)

let test_scheduler_drop () =
  let sched = Scheduler.create ~max_queue:8 in
  let s = spec "swim" in
  let fp = Protocol.fingerprint s in
  ignore (submit sched s "a");
  ignore (submit sched s "b");
  Scheduler.drop_member sched ~fingerprint:fp ~id:"a";
  checki "depth after drop" 1 (Scheduler.queue_depth sched);
  Scheduler.drop_member sched ~fingerprint:fp ~id:"b";
  (* last member gone while still queued: the group is cancelled *)
  checkb "idle" true (Scheduler.idle sched);
  checkb "nothing to run" true (Scheduler.next sched = None)

let suite =
  ( "serve",
    [
      Alcotest.test_case "framing roundtrip + clean eof" `Quick
        test_framing_roundtrip;
      Alcotest.test_case "framing torn frame" `Quick test_framing_torn;
      Alcotest.test_case "framing oversized prefix" `Quick
        test_framing_oversized;
      Alcotest.test_case "decoder reassembles split frames" `Quick
        test_decoder_reassembly;
      Alcotest.test_case "protocol json roundtrip" `Quick
        test_protocol_roundtrip;
      Alcotest.test_case "protocol version gate" `Quick
        test_protocol_version_gate;
      Alcotest.test_case "fingerprint canonicalization" `Quick
        test_fingerprint;
      Alcotest.test_case "scheduler single-flight coalescing" `Quick
        test_scheduler_coalescing;
      Alcotest.test_case "scheduler admission control" `Quick
        test_scheduler_admission;
      Alcotest.test_case "scheduler per-tenant round-robin" `Quick
        test_scheduler_fairness;
      Alcotest.test_case "scheduler drops vanished members" `Quick
        test_scheduler_drop;
    ] )

(* --- end-to-end daemon tests (fork-legal binary only) ------------------ *)

(* A deterministic fake runner: [ticks] engine jobs of [tick_sleep]
   seconds each, result text derived from the spec.  Slow enough that
   the e2e tests can join searches mid-run. *)
let fake_runner ?(ticks = 40) ?(tick_sleep = 0.005) () =
  {
    Runner.validate =
      (fun s ->
        if s.Protocol.benchmark = "bad" then Error "unknown benchmark 'bad'"
        else Ok ());
    run =
      (fun s ~tick ->
        for _ = 1 to ticks do
          Unix.sleepf tick_sleep;
          tick ()
        done;
        Ok
          {
            Scheduler.text =
              Printf.sprintf "RESULT %s seed %d\n" s.Protocol.benchmark
                s.Protocol.seed;
            speedup = 1.5;
            evaluations = ticks;
          });
  }

let with_daemon ?(max_queue = 256) runner f =
  let socket_path = Filename.temp_file "funcy-serve" ".sock" in
  Sys.remove socket_path;
  match Unix.fork () with
  | 0 ->
      (* Child: serve until drained.  Unix._exit, never Stdlib.exit —
         the child inherited the parent's channel buffers (and
         Alcotest's at_exit) and must run neither. *)
      (try
         ignore
           (Server.serve
              { (Server.default_config ~socket_path) with max_queue;
                progress_every = 10 }
              runner)
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      Fun.protect ~finally:(fun () ->
          (match Client.shutdown ~retry_for:1.0 socket_path with
          | Ok () -> ()
          | Error _ -> ( try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()));
          ignore (Unix.waitpid [] pid);
          try Sys.remove socket_path with Sys_error _ -> ())
      @@ fun () ->
      (match Client.ping ~retry_for:10.0 socket_path with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "daemon never came up: %s" (Client.failure_to_string e));
      f socket_path

(* Raw parallel clients: open a connection and park the request, read
   the streamed responses later.  The daemon serves all of them
   concurrently; reading sequentially afterwards does not change what
   it did. *)
let park socket_path ?(tenant = "t0") s id =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  Protocol.write_request fd (Protocol.Tune { id; tenant; spec = s });
  fd

let read_terminal fd =
  let rec go events =
    match Protocol.read_response fd with
    | Error (`Framing e) ->
        Alcotest.failf "stream died: %s" (Framing.error_to_string e)
    | Error (`Decode e) ->
        Alcotest.failf "undecodable: %s" (Protocol.decode_error_to_string e)
    | Ok ((Protocol.Admitted _ | Coalesced _ | Started _ | Progress _) as ev)
      ->
        go (ev :: events)
    | Ok terminal -> (List.rev events, terminal)
  in
  let r = go [] in
  Unix.close fd;
  r

let expect_result = function
  | _, Protocol.Result p -> p
  | _, Protocol.Rejected { reason; _ } ->
      Alcotest.failf "rejected: %s" (Protocol.reject_reason_to_string reason)
  | _ -> Alcotest.fail "no result"

let test_e2e_coalescing () =
  with_daemon (fake_runner ()) @@ fun sock ->
  let s = spec "swim" in
  let n = 8 in
  let fds =
    List.init n (fun i -> park sock s (Printf.sprintf "r%d" i))
  in
  let results = List.map (fun fd -> expect_result (read_terminal fd)) fds in
  let texts = List.map (fun p -> p.Protocol.text) results in
  List.iter (fun t -> checks "identical text" (List.hd texts) t) texts;
  checki "fresh results" 1
    (List.length
       (List.filter (fun p -> p.Protocol.origin = Protocol.Fresh) results));
  checki "coalesced results" (n - 1)
    (List.length
       (List.filter
          (fun p ->
            match p.Protocol.origin with
            | Protocol.Coalesced_with _ -> true
            | _ -> false)
          results));
  List.iter (fun p -> checki "group size" n p.Protocol.group_size) results;
  (* exactly one search ran: the daemon's own counters say so *)
  match Client.stats sock with
  | Ok counters ->
      checki "admitted" 1 (List.assoc "admitted" counters);
      checki "coalesced" (n - 1) (List.assoc "coalesced" counters);
      checki "groups_completed" 1 (List.assoc "groups_completed" counters)
  | Error e -> Alcotest.failf "stats failed: %s" (Client.failure_to_string e)

let test_e2e_midrun_join () =
  with_daemon (fake_runner ~ticks:120 ~tick_sleep:0.005 ()) @@ fun sock ->
  let s = spec "swim" in
  let leader = park sock s "leader" in
  (* wait until the search is actually running *)
  let rec await_started () =
    match Protocol.read_response leader with
    | Ok (Protocol.Started _) -> ()
    | Ok (Protocol.Admitted _) -> await_started ()
    | Ok _ | Error _ -> Alcotest.fail "leader did not reach Started"
  in
  await_started ();
  (* now join the in-flight search *)
  let joiner = park sock s "joiner" in
  let jp = expect_result (read_terminal joiner) in
  (match jp.Protocol.origin with
  | Protocol.Coalesced_with "leader" -> ()
  | o -> Alcotest.failf "joiner origin %s" (Protocol.origin_to_string o));
  checki "group of two" 2 jp.Protocol.group_size;
  let lp = expect_result (read_terminal leader) in
  checkb "leader fresh" true (lp.Protocol.origin = Protocol.Fresh);
  checks "same bytes" lp.Protocol.text jp.Protocol.text

(* Flooding tenant a queues five searches before tenant b submits one;
   round-robin must complete b's long before a's backlog.  Arrival
   times are compared, so the assertion survives a slow machine: if b
   were starved its result would arrive last, making the margin ~0. *)
let test_e2e_fairness () =
  with_daemon (fake_runner ~ticks:10 ~tick_sleep:0.005 ()) @@ fun sock ->
  let flood =
    List.init 5 (fun i ->
        park sock ~tenant:"a" (spec ~seed:(i + 1) "swim")
          (Printf.sprintf "a%d" i))
  in
  let b = park sock ~tenant:"b" (spec ~seed:1 "cl") "b0" in
  ignore (expect_result (read_terminal b));
  let t_b = Unix.gettimeofday () in
  List.iter (fun fd -> ignore (expect_result (read_terminal fd))) flood;
  let t_last_a = Unix.gettimeofday () in
  checkb "b finished well before the flood cleared" true
    (t_last_a -. t_b > 0.05)

let test_e2e_rejections () =
  with_daemon ~max_queue:2 (fake_runner ~ticks:60 ~tick_sleep:0.005 ())
  @@ fun sock ->
  (* unsupported spec: typed Unsupported reject *)
  (match Client.tune ~socket_path:sock ~id:"x" ~tenant:"t" (spec "bad") with
  | Error (Client.Rejected (Protocol.Unsupported _)) -> ()
  | _ -> Alcotest.fail "invalid spec not rejected as unsupported");
  (* backpressure: two waiting requests fill the queue; a third bounces *)
  let w1 = park sock (spec ~seed:1 "swim") "w1" in
  let w2 = park sock (spec ~seed:2 "swim") "w2" in
  ignore (Unix.select [] [] [] 0.1);
  (match Client.tune ~socket_path:sock ~id:"w3" ~tenant:"t" (spec ~seed:3 "swim") with
  | Error (Client.Rejected (Protocol.Queue_full { limit = 2 })) -> ()
  | Ok _ -> Alcotest.fail "over-quota request admitted"
  | Error f -> Alcotest.failf "wrong failure: %s" (Client.failure_to_string f));
  (* raw protocol garbage: typed Malformed reject, connection survives
     server-side bookkeeping *)
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  Framing.write_bytes fd (Bytes.of_string "this is not json");
  (match Protocol.read_response fd with
  | Ok (Protocol.Rejected { reason = Protocol.Malformed _; _ }) -> ()
  | _ -> Alcotest.fail "garbage frame not rejected as malformed");
  Unix.close fd;
  (* wrong protocol version: typed Bad_version reject *)
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  Framing.write_bytes fd
    (Bytes.of_string (Json.to_string
       (Json.Obj [ ("v", Json.Int 9); ("kind", Json.String "ping") ])));
  (match Protocol.read_response fd with
  | Ok (Protocol.Rejected { reason = Protocol.Bad_version { got = 9 }; _ }) ->
      ()
  | _ -> Alcotest.fail "wrong version not rejected as bad_version");
  Unix.close fd;
  ignore (expect_result (read_terminal w1));
  ignore (expect_result (read_terminal w2))

let test_e2e_drain () =
  with_daemon (fake_runner ~ticks:80 ~tick_sleep:0.005 ()) @@ fun sock ->
  let running = park sock (spec ~seed:1 "swim") "r0" in
  ignore (Unix.select [] [] [] 0.1);
  (* shutdown while the search runs: acknowledged immediately ... *)
  (match Client.shutdown sock with
  | Ok () -> ()
  | Error e -> Alcotest.failf "shutdown failed: %s" (Client.failure_to_string e));
  (* ... new work is refused as draining ... *)
  (match Client.tune ~socket_path:sock ~id:"late" ~tenant:"t" (spec ~seed:2 "swim") with
  | Error (Client.Rejected Protocol.Draining) -> ()
  | Error (Client.Transport _) ->
      (* the daemon may already have exited — equally a refusal *)
      ()
  | _ -> Alcotest.fail "post-shutdown request not refused");
  (* ... and the in-flight search still completes for its client *)
  let p = expect_result (read_terminal running) in
  checks "drained result" "RESULT swim seed 1\n" p.Protocol.text

(* Like [with_daemon], but the runner (and its engine) is built only in
   the daemon child, so the parent stays domain-free and fork-legal. *)
let with_daemon_lazy make_runner f =
  let socket_path = Filename.temp_file "funcy-serve" ".sock" in
  Sys.remove socket_path;
  match Unix.fork () with
  | 0 ->
      (try
         ignore
           (Server.serve (Server.default_config ~socket_path) (make_runner ()))
       with _ -> Unix._exit 1);
      Unix._exit 0
  | pid ->
      Fun.protect ~finally:(fun () ->
          (match Client.shutdown ~retry_for:1.0 socket_path with
          | Ok () -> ()
          | Error _ -> ( try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()));
          ignore (Unix.waitpid [] pid);
          try Sys.remove socket_path with Sys_error _ -> ())
      @@ fun () ->
      (match Client.ping ~retry_for:30.0 socket_path with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "daemon never came up: %s" (Client.failure_to_string e));
      f socket_path

(* The serve contract: a served result is byte-identical to the same
   search run solo, and a memoized replay returns the same bytes with
   origin=cached.  Runs the real runner (engine jobs=1, fork-legal). *)
let test_e2e_byte_identity () =
  let real () = Runner.make ~engine:(Ft_engine.Engine.create ~jobs:1 ()) in
  let s =
    { Protocol.benchmark = "swim"; platform = "bdw"; algorithm = "cfr";
      seed = 42; pool = 80; top_x = None }
  in
  let served, cached =
    with_daemon_lazy real @@ fun sock ->
    let p1 =
      match Client.tune ~socket_path:sock ~id:"c1" ~tenant:"t" s with
      | Ok p -> p
      | Error e -> Alcotest.failf "tune failed: %s" (Client.failure_to_string e)
    in
    let p2 =
      match Client.tune ~socket_path:sock ~id:"c2" ~tenant:"t" s with
      | Ok p -> p
      | Error e -> Alcotest.failf "tune failed: %s" (Client.failure_to_string e)
    in
    (p1, p2)
  in
  checkb "replay cached" true (cached.Protocol.origin = Protocol.Cached);
  checks "replay bytes" served.Protocol.text cached.Protocol.text;
  (* solo reference, computed only after every fork is done *)
  let program = Option.get (Ft_suite.Suite.find "swim") in
  let platform = Ft_prog.Platform.Broadwell in
  let session =
    Funcytuner.Tuner.make_session ~pool_size:80
      ~engine:(Ft_engine.Engine.create ~jobs:1 ())
      ~platform ~program
      ~input:(Ft_suite.Suite.tuning_input platform program)
      ~seed:42 ()
  in
  let solo =
    Funcytuner.Result.render
      (Funcytuner.Tuner.run_cfr ~top_x:Funcytuner.Cfr.default_top_x session)
  in
  checks "served = solo bytes" solo served.Protocol.text

(* A small in-process loadgen burst against a fake daemon: zero errors,
   zero divergence, coalescing doing its job under zipfian skew. *)
let test_e2e_loadgen () =
  with_daemon (fake_runner ~ticks:5 ~tick_sleep:0.002 ()) @@ fun sock ->
  let config =
    {
      (Ft_serve.Loadgen.default_config ~socket_path:sock) with
      Ft_serve.Loadgen.clients = 80;
      concurrency = 20;
      benchmarks = [ "swim"; "cl"; "amg" ];
      seeds_per_benchmark = 2;
    }
  in
  let o = Ft_serve.Loadgen.run config in
  checki "all completed" 80 Ft_serve.Loadgen.(o.completed);
  checki "no errors" 0 Ft_serve.Loadgen.(o.errors);
  checki "no divergence" 0 Ft_serve.Loadgen.(o.inconsistent);
  checkb "coalescing helped" true (Ft_serve.Loadgen.(o.coalesce_rate) > 0.5)

let suite_e2e =
  ( "serve-e2e",
    [
      Alcotest.test_case "single-flight coalescing over the wire" `Quick
        test_e2e_coalescing;
      Alcotest.test_case "mid-run join of an in-flight search" `Quick
        test_e2e_midrun_join;
      Alcotest.test_case "per-tenant fairness under flooding" `Quick
        test_e2e_fairness;
      Alcotest.test_case "typed rejections (unsupported/backpressure/\
                          malformed/version)" `Quick test_e2e_rejections;
      Alcotest.test_case "graceful drain on shutdown" `Quick test_e2e_drain;
      Alcotest.test_case "served result byte-identical to solo tune" `Quick
        test_e2e_byte_identity;
      Alcotest.test_case "loadgen burst: zero errors, coalesced" `Quick
        test_e2e_loadgen;
    ] )
