(* Tests for ft_experiments: Series arithmetic, Lab caching, and
   reduced-budget shape checks of the figure runners — the integration
   layer of the reproduction. *)

open Ft_prog
module Series = Ft_experiments.Series
module Lab = Ft_experiments.Lab

(* --- Series ----------------------------------------------------------- *)

let sample =
  Series.make ~title:"t" ~columns:[ "A"; "B" ]
    [ ("x", [ 1.0; 2.0 ]); ("y", [ 4.0; 8.0 ]) ]

let test_series_accessors () =
  Alcotest.(check (float 1e-9)) "cell" 8.0
    (Series.cell sample ~row:"y" ~column:"B");
  Alcotest.(check (list (pair string (float 1e-9)))) "column"
    [ ("x", 1.0); ("y", 4.0) ]
    (Series.column sample "A")

let test_series_geomean () =
  let with_gm = Series.with_geomean sample in
  Alcotest.(check (float 1e-9)) "GM of column A" 2.0
    (Series.cell with_gm ~row:"GM" ~column:"A");
  Alcotest.(check (float 1e-9)) "GM of column B" 4.0
    (Series.cell with_gm ~row:"GM" ~column:"B")

let test_series_validation () =
  Alcotest.check_raises "ragged rows rejected"
    (Invalid_argument "Series.make: ragged row bad") (fun () ->
      ignore (Series.make ~title:"t" ~columns:[ "A"; "B" ] [ ("bad", [ 1.0 ]) ]))

let test_series_render () =
  let text = Ft_util.Table.render (Series.to_table sample) in
  Alcotest.(check bool) "renders values" true
    (Test_helpers.contains text "8.000")

let test_csv_export () =
  let csv = Ft_experiments.Csv.of_series sample in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" ",A,B" (List.hd lines);
  Alcotest.(check bool) "values present" true
    (Test_helpers.contains csv "8.000000")

let test_csv_escaping () =
  let tricky =
    Series.make ~title:"t" ~columns:[ "a,b"; "q\"q" ] [ ("r", [ 1.0; 2.0 ]) ]
  in
  let csv = Ft_experiments.Csv.of_series tricky in
  Alcotest.(check bool) "comma quoted" true
    (Test_helpers.contains csv "\"a,b\"");
  Alcotest.(check bool) "quote doubled" true
    (Test_helpers.contains csv "\"q\"\"q\"")

(* --- Lab (shared, reduced budget) --------------------------------------- *)

(* A small lab: pool of 60 keeps each cell fast while preserving shape. *)
let lab = lazy (Lab.create ~seed:4 ~pool_size:150 ~top_x:10 ())

let test_lab_caching () =
  let l = Lazy.force lab in
  let program = Option.get (Ft_suite.Suite.find "363.swim") in
  let s1 = Lab.session l Platform.Broadwell program in
  let s2 = Lab.session l Platform.Broadwell program in
  Alcotest.(check bool) "session memoized" true (s1 == s2);
  let r1 = Lab.report l Platform.Broadwell program in
  let r2 = Lab.report l Platform.Broadwell program in
  Alcotest.(check bool) "report memoized" true (r1 == r2)

let test_lab_o3_evaluation () =
  let l = Lazy.force lab in
  let program = Option.get (Ft_suite.Suite.find "363.swim") in
  let input = Ft_suite.Suite.tuning_input Platform.Broadwell program in
  let t = Lab.o3_on l Platform.Broadwell program ~input in
  Alcotest.(check bool) "O3 time positive" true (t > 0.0)

let test_report_shape_invariants () =
  (* The paper's qualitative claims, checked per benchmark on the reduced
     budget: CFR is never (much) below the O3 baseline, FR never beats CFR
     by a margin, and G.Independent dominates G.realized. *)
  let l = Lazy.force lab in
  List.iter
    (fun (p : Program.t) ->
      let r = Lab.report l Platform.Broadwell p in
      let cfr = r.Funcytuner.Tuner.cfr.Funcytuner.Result.speedup in
      let fr = r.Funcytuner.Tuner.fr.Funcytuner.Result.speedup in
      let g = r.Funcytuner.Tuner.greedy in
      Alcotest.(check bool)
        (p.Program.name ^ ": CFR does not lose to O3")
        true (cfr > 0.97);
      Alcotest.(check bool)
        (p.Program.name ^ ": CFR at least matches FR")
        true
        (cfr >= fr -. 0.02);
      (* The "bound" is built from *instrumented, noisy* per-loop
         measurements (as in the paper), so strict dominance only holds up
         to that measurement bias. *)
      Alcotest.(check bool)
        (p.Program.name ^ ": independence bound dominates realization")
        true
        (g.Funcytuner.Greedy.independent_speedup
        >= 0.97 *. g.Funcytuner.Greedy.realized.Funcytuner.Result.speedup))
    Ft_suite.Suite.all

let test_fig5_panel_structure () =
  let l = Lazy.force lab in
  let panel = Ft_experiments.Fig5.panel l Platform.Broadwell in
  Alcotest.(check int) "7 benchmarks + GM" 8 (List.length panel.Series.rows);
  Alcotest.(check (list string)) "columns"
    [ "Random"; "G.realized"; "FR"; "CFR"; "G.Independent" ]
    panel.Series.columns;
  (* GM of CFR beats GM of Random — the paper's headline. *)
  let gm c = Series.cell panel ~row:"GM" ~column:c in
  Alcotest.(check bool) "CFR GM > Random GM" true (gm "CFR" > gm "Random")

let test_fig9_structure () =
  let l = Lazy.force lab in
  let s = Ft_experiments.Casestudy.fig9 l in
  Alcotest.(check int) "five kernels" 5 (List.length s.Series.rows);
  (* acc's aliasing is only unlockable per-loop: CFR must beat Random
     there. *)
  Alcotest.(check bool) "CFR wins acc" true
    (Series.cell s ~row:"acc" ~column:"CFR"
    > Series.cell s ~row:"acc" ~column:"Random")

let test_tab3_contains_o3_row () =
  let l = Lazy.force lab in
  let text = Ft_util.Table.render (Ft_experiments.Casestudy.table3 l) in
  Alcotest.(check bool) "O3 row present" true
    (Test_helpers.contains text "O3 baseline");
  Alcotest.(check bool) "kernel ratios present" true
    (Test_helpers.contains text "6.3")

let test_fig7_row_width () =
  let l = Lazy.force lab in
  let program = Option.get (Ft_suite.Suite.find "363.swim") in
  let input = Ft_suite.Suite.small_input program in
  let row = Ft_experiments.Fig7.row l program ~input in
  Alcotest.(check int) "six comparators" 6 (List.length row);
  List.iter
    (fun v -> Alcotest.(check bool) "positive speedup" true (v > 0.0))
    row

let suite =
  ( "experiments",
    [
      Alcotest.test_case "series accessors" `Quick test_series_accessors;
      Alcotest.test_case "series geomean" `Quick test_series_geomean;
      Alcotest.test_case "series validation" `Quick test_series_validation;
      Alcotest.test_case "series rendering" `Quick test_series_render;
      Alcotest.test_case "csv export" `Quick test_csv_export;
      Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
      Alcotest.test_case "lab caching" `Quick test_lab_caching;
      Alcotest.test_case "lab O3 evaluation" `Quick test_lab_o3_evaluation;
      Alcotest.test_case "paper shape invariants (all benchmarks)" `Slow
        test_report_shape_invariants;
      Alcotest.test_case "fig5 panel structure" `Slow test_fig5_panel_structure;
      Alcotest.test_case "fig9 structure" `Slow test_fig9_structure;
      Alcotest.test_case "tab3 structure" `Slow test_tab3_contains_o3_row;
      Alcotest.test_case "fig7 row" `Slow test_fig7_row_width;
    ] )
