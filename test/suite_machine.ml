(* Tests for ft_machine: architecture models, quirks, and the execution
   model's physical sanity (monotonicities, couplings). *)

open Ft_prog
module Arch = Ft_machine.Arch
module Exec = Ft_machine.Exec
module Quirk = Ft_machine.Quirk
module Toolchain = Ft_machine.Toolchain
module Cv = Ft_flags.Cv
module Flag = Ft_flags.Flag

let bdw = Arch.of_platform Platform.Broadwell
let snb = Arch.of_platform Platform.Sandy_bridge
let opteron = Arch.of_platform Platform.Opteron
let toolchain = Toolchain.make Platform.Broadwell
let program = Ft_suite.Cloverleaf.program
let input = Input.make ~size:2000.0 ~steps:30 ()

let o3_run ?(arch = bdw) ?(platform = Platform.Broadwell) ?(cv = Cv.o3) () =
  let tc = Toolchain.make platform in
  Exec.evaluate ~arch ~input (Toolchain.compile_uniform tc ~cv program)

(* --- Arch -------------------------------------------------------------- *)

let test_arch_table2 () =
  Alcotest.(check int) "16 threads everywhere" 16 bdw.Arch.omp_threads;
  Alcotest.(check int) "snb threads" 16 snb.Arch.omp_threads;
  Alcotest.(check int) "opteron numa" 4 opteron.Arch.numa_nodes;
  Alcotest.(check int) "opteron cores" 8 (Arch.physical_cores opteron);
  Alcotest.(check int) "bdw cores" 16 (Arch.physical_cores bdw);
  Alcotest.(check (float 1e-9)) "bdw frequency" 2.1 bdw.Arch.freq_ghz;
  Alcotest.(check bool) "only Intel throttles AVX" true
    (opteron.Arch.avx256_throttle = 0.0 && bdw.Arch.avx256_throttle > 0.0)

let test_effective_cores () =
  Alcotest.(check (float 1e-9)) "bdw: one thread per core" 16.0
    (Arch.effective_cores bdw);
  Alcotest.(check bool) "opteron SMT helps but less than 2x" true
    (Arch.effective_cores opteron > 8.0 && Arch.effective_cores opteron < 16.0)

let test_aggregate_bandwidth () =
  Alcotest.(check bool) "bdw has more bandwidth than opteron" true
    (Arch.aggregate_dram_gbs bdw > Arch.aggregate_dram_gbs opteron)

(* --- Quirk ------------------------------------------------------------- *)

let test_quirk_deterministic () =
  let rng = Ft_util.Rng.create 41 in
  let cv = Ft_flags.Space.sample rng in
  let f () =
    Quirk.factor ~platform:Platform.Broadwell ~program:"p" ~region:"r" cv
  in
  Alcotest.(check (float 1e-12)) "memoized and stable" (f ()) (f ())

let test_quirk_bounds () =
  let rng = Ft_util.Rng.create 42 in
  for _ = 1 to 100 do
    let cv = Ft_flags.Space.sample rng in
    let q =
      Quirk.factor ~platform:Platform.Broadwell ~program:"p" ~region:"r" cv
    in
    Alcotest.(check bool) "within a few percent of 1" true
      (q > 0.9 && q < 1.1)
  done

let test_quirk_varies_by_region () =
  let cv = Cv.o3 in
  let a = Quirk.factor ~platform:Platform.Broadwell ~program:"p" ~region:"r1" cv in
  let b = Quirk.factor ~platform:Platform.Broadwell ~program:"p" ~region:"r2" cv in
  Alcotest.(check bool) "regions have their own texture" true (a <> b)

let test_flag_factor_bounds () =
  Array.iter
    (fun flag ->
      for v = 0 to Flag.arity flag - 1 do
        let q =
          Quirk.flag_factor ~platform:Platform.Opteron ~program:"p"
            ~region:"r" flag v
        in
        Alcotest.(check bool) "per-flag amplitude" true
          (q >= 0.985 && q <= 1.015)
      done)
    Flag.all

(* --- Exec: determinism and structure ------------------------------------ *)

let test_evaluate_deterministic () =
  let r1 = o3_run () and r2 = o3_run () in
  Alcotest.(check (float 1e-12)) "noise-free evaluate is pure"
    r1.Exec.total_s r2.Exec.total_s

let test_total_is_sum_of_regions () =
  let r = o3_run () in
  let sum =
    List.fold_left (fun acc (x : Exec.region_report) -> acc +. x.Exec.seconds)
      r.Exec.nonloop.Exec.seconds r.Exec.loops
  in
  Alcotest.(check (float 1e-6)) "additive regions" r.Exec.total_s sum

let test_region_names_cover_program () =
  let r = o3_run () in
  Alcotest.(check int) "one report per loop" (Program.loop_count program)
    (List.length r.Exec.loops)

(* --- Exec: monotonicities ------------------------------------------------ *)

let test_more_steps_longer () =
  let at steps =
    (Exec.evaluate ~arch:bdw ~input:(Input.make ~size:2000.0 ~steps ())
       (Toolchain.compile_uniform toolchain ~cv:Cv.o3 program))
      .Exec.total_s
  in
  Alcotest.(check bool) "60 steps > 30 steps" true (at 60 > at 30);
  Alcotest.(check (float 0.2)) "roughly linear in steps" 2.0
    (at 60 /. at 30)

let test_bigger_input_longer () =
  let at size =
    (Exec.evaluate ~arch:bdw ~input:(Input.make ~size ~steps:30 ())
       (Toolchain.compile_uniform toolchain ~cv:Cv.o3 program))
      .Exec.total_s
  in
  Alcotest.(check bool) "4000 > 2000 cells" true (at 4000.0 > at 2000.0)

let test_platforms_ranked () =
  (* Same program and input: the Opteron (8 slower cores, less bandwidth)
     must be slower than Broadwell. *)
  let bdw_t = (o3_run ()).Exec.total_s in
  let opt_t =
    (o3_run ~arch:opteron ~platform:Platform.Opteron ()).Exec.total_s
  in
  Alcotest.(check bool) "opteron slower" true (opt_t > bdw_t)

let test_o1_slower_than_o3 () =
  let o3_t = (o3_run ()).Exec.total_s in
  let o1 = Cv.set Cv.o3 Flag.Base_opt 0 in
  let o1_t = (o3_run ~cv:o1 ()).Exec.total_s in
  Alcotest.(check bool) "O1 noticeably slower" true (o1_t > o3_t *. 1.05)

(* --- Exec: couplings ------------------------------------------------------ *)

let test_avx_throttle_engages () =
  let forced =
    Cv.o3
    |> (fun cv -> Cv.set cv Flag.Simd_width 2)
    |> fun cv -> Cv.set cv Flag.Dep_analysis 2
  in
  let r = o3_run ~cv:forced () in
  Alcotest.(check bool) "256-bit code derates frequency" true
    (r.Exec.freq_factor < 1.0);
  let novec = Cv.set Cv.o3 Flag.Vec 0 in
  let r' = o3_run ~cv:novec () in
  Alcotest.(check (float 1e-9)) "scalar binaries run at nominal clock" 1.0
    r'.Exec.freq_factor

let test_no_throttle_on_opteron () =
  let forced = Cv.set Cv.o3 Flag.Simd_width 2 in
  let r = o3_run ~arch:opteron ~platform:Platform.Opteron ~cv:forced () in
  Alcotest.(check (float 1e-9)) "no AVX license on Opteron" 1.0
    r.Exec.freq_factor

let test_icache_pressure () =
  (* Maximal unrolling everywhere blows the code footprint up. *)
  let fat = Cv.set (Cv.set Cv.o3 Flag.Unroll 5) Flag.Unroll_aggressive 1 in
  let r = o3_run ~cv:fat () in
  Alcotest.(check bool) "i-cache multiplier engages" true
    (r.Exec.icache_mult > 1.0);
  Alcotest.(check bool) "baseline fits" true
    ((o3_run ()).Exec.icache_mult < r.Exec.icache_mult)

(* --- Exec: measurement ----------------------------------------------------- *)

let test_measure_noise_small_and_seeded () =
  let binary = Toolchain.compile_uniform toolchain ~cv:Cv.o3 program in
  let truth = (o3_run ()).Exec.total_s in
  let m1 =
    Exec.measure ~arch:bdw ~input ~rng:(Ft_util.Rng.create 1) binary
  in
  let m2 =
    Exec.measure ~arch:bdw ~input ~rng:(Ft_util.Rng.create 1) binary
  in
  let m3 =
    Exec.measure ~arch:bdw ~input ~rng:(Ft_util.Rng.create 2) binary
  in
  Alcotest.(check (float 1e-12)) "same seed, same sample" m1.Exec.elapsed_s
    m2.Exec.elapsed_s;
  Alcotest.(check bool) "different seed differs" true
    (m1.Exec.elapsed_s <> m3.Exec.elapsed_s);
  Alcotest.(check bool) "noise within ±5%" true
    (Float.abs (m1.Exec.elapsed_s -. truth) /. truth < 0.05)

let test_instrumented_overhead_small () =
  let plain = Toolchain.compile_uniform toolchain ~cv:Cv.o3 program in
  let instrumented =
    Toolchain.compile_uniform toolchain ~cv:Cv.o3 ~instrumented:true program
  in
  let t0 = (Exec.evaluate ~arch:bdw ~input plain).Exec.total_s in
  let t1 = (Exec.evaluate ~arch:bdw ~input instrumented).Exec.total_s in
  let overhead = (t1 -. t0) /. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "Caliper overhead %.1f%% is under 3%%" (100.0 *. overhead))
    true
    (overhead > 0.0 && overhead < 0.03)

let test_samples_only_when_instrumented () =
  let rng = Ft_util.Rng.create 3 in
  let plain = Toolchain.compile_uniform toolchain ~cv:Cv.o3 program in
  let inst =
    Toolchain.compile_uniform toolchain ~cv:Cv.o3 ~instrumented:true program
  in
  Alcotest.(check int) "no samples from plain binaries" 0
    (List.length (Exec.measure ~arch:bdw ~input ~rng plain).Exec.region_samples);
  Alcotest.(check int) "one sample per loop"
    (Program.loop_count program)
    (List.length (Exec.measure ~arch:bdw ~input ~rng inst).Exec.region_samples)

(* --- Explain ----------------------------------------------------------- *)

let test_explain_classification () =
  let run = o3_run () in
  let entries = Ft_machine.Explain.of_run run in
  Alcotest.(check int) "one entry per region"
    (Program.loop_count program + 1)
    (List.length entries);
  (* Entries are sorted hottest first. *)
  let seconds = List.map (fun e -> e.Ft_machine.Explain.seconds) entries in
  Alcotest.(check (list (float 1e-9))) "sorted descending"
    (List.sort (fun a b -> compare b a) seconds)
    seconds;
  (* Shares sum to 1. *)
  let total =
    List.fold_left (fun acc e -> acc +. e.Ft_machine.Explain.share) 0.0 entries
  in
  Alcotest.(check (float 1e-6)) "shares sum to 1" 1.0 total

let test_explain_boundedness_names () =
  Alcotest.(check string) "compute" "compute-bound"
    (Ft_machine.Explain.boundedness_name Ft_machine.Explain.Compute_bound);
  Alcotest.(check string) "memory" "memory-bound"
    (Ft_machine.Explain.boundedness_name Ft_machine.Explain.Memory_bound);
  Alcotest.(check string) "balanced" "balanced"
    (Ft_machine.Explain.boundedness_name Ft_machine.Explain.Balanced)

let test_explain_render () =
  let text = Ft_machine.Explain.render (o3_run ()) in
  Alcotest.(check bool) "mentions dt" true (Test_helpers.contains text "dt");
  Alcotest.(check bool) "mentions derating" true
    (Test_helpers.contains text "derating")

let prop_measure_positive =
  QCheck.Test.make ~count:30 ~name:"measured times are positive"
    QCheck.small_int (fun seed ->
      let rng = Ft_util.Rng.create seed in
      let cv = Ft_flags.Space.sample rng in
      let binary = Toolchain.compile_uniform toolchain ~cv program in
      (Exec.measure ~arch:bdw ~input ~rng binary).Exec.elapsed_s > 0.0)

let suite =
  ( "machine",
    [
      Alcotest.test_case "table 2 parameters" `Quick test_arch_table2;
      Alcotest.test_case "effective cores" `Quick test_effective_cores;
      Alcotest.test_case "bandwidth ordering" `Quick test_aggregate_bandwidth;
      Alcotest.test_case "quirk deterministic" `Quick test_quirk_deterministic;
      Alcotest.test_case "quirk bounds" `Quick test_quirk_bounds;
      Alcotest.test_case "quirk per-region" `Quick test_quirk_varies_by_region;
      Alcotest.test_case "flag factor bounds" `Quick test_flag_factor_bounds;
      Alcotest.test_case "evaluate pure" `Quick test_evaluate_deterministic;
      Alcotest.test_case "regions additive" `Quick test_total_is_sum_of_regions;
      Alcotest.test_case "region coverage" `Quick
        test_region_names_cover_program;
      Alcotest.test_case "steps monotone" `Quick test_more_steps_longer;
      Alcotest.test_case "size monotone" `Quick test_bigger_input_longer;
      Alcotest.test_case "platform ranking" `Quick test_platforms_ranked;
      Alcotest.test_case "O1 slower" `Quick test_o1_slower_than_o3;
      Alcotest.test_case "avx throttle" `Quick test_avx_throttle_engages;
      Alcotest.test_case "no throttle on opteron" `Quick
        test_no_throttle_on_opteron;
      Alcotest.test_case "icache pressure" `Quick test_icache_pressure;
      Alcotest.test_case "measurement noise" `Quick
        test_measure_noise_small_and_seeded;
      Alcotest.test_case "instrumentation overhead" `Quick
        test_instrumented_overhead_small;
      Alcotest.test_case "samples gated" `Quick
        test_samples_only_when_instrumented;
      Alcotest.test_case "explain classification" `Quick
        test_explain_classification;
      Alcotest.test_case "explain names" `Quick test_explain_boundedness_names;
      Alcotest.test_case "explain render" `Quick test_explain_render;
      QCheck_alcotest.to_alcotest prop_measure_positive;
    ] )
