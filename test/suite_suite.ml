(* Tests for ft_suite: the seven benchmark models and their inputs. *)

open Ft_prog
module Suite = Ft_suite.Suite
module Exec = Ft_machine.Exec
module Toolchain = Ft_machine.Toolchain

let test_seven_benchmarks () =
  Alcotest.(check int) "seven programs" 7 (List.length Suite.all)

let test_table1_metadata () =
  let expect name language loc domain =
    let p = Option.get (Suite.find name) in
    Alcotest.(check string) (name ^ " language") language
      (Program.language_name p.Program.language);
    Alcotest.(check int) (name ^ " loc") loc p.Program.loc;
    Alcotest.(check string) (name ^ " domain") domain p.Program.domain
  in
  expect "AMG" "C" 113_000 "Math: linear solver";
  expect "LULESH" "C++" 7_200 "Hydrodynamics";
  expect "Cloverleaf" "C" 14_500 "Hydrodynamics";
  expect "351.bwaves" "Fortran" 1_200 "Computational fluid dynamics";
  expect "362.fma3d" "Fortran" 62_000 "Mechanical simulation";
  expect "363.swim" "Fortran" 500 "Weather prediction";
  expect "Optewe" "C++" 2_700 "Seismic wave simulation"

let test_aliases () =
  Alcotest.(check bool) "cl alias" true (Suite.find "cl" <> None);
  Alcotest.(check bool) "case-insensitive" true (Suite.find "LULESH" <> None);
  Alcotest.(check bool) "lowercase" true (Suite.find "lulesh" <> None);
  Alcotest.(check bool) "unknown" true (Suite.find "doom" = None)

let test_loop_counts_in_paper_range () =
  (* "J is program-specific and ranges from 5 to 33 in this work" — the
     candidate loop counts must make that possible. *)
  List.iter
    (fun (p : Program.t) ->
      let j = Program.loop_count p in
      Alcotest.(check bool)
        (Printf.sprintf "%s has %d candidate loops" p.Program.name j)
        true (j >= 4 && j <= 33))
    Suite.all

let test_pgo_instrumentable_flags () =
  let check name expected =
    let p = Option.get (Suite.find name) in
    Alcotest.(check bool) name expected p.Program.pgo_instrumentable
  in
  check "LULESH" false;
  check "Optewe" false;
  check "AMG" true;
  check "Cloverleaf" true

let test_table2_inputs () =
  let check name platform size steps =
    let p = Option.get (Suite.find name) in
    let i = Suite.tuning_input platform p in
    Alcotest.(check (float 1e-9)) (name ^ " size") size i.Input.size;
    Alcotest.(check int) (name ^ " steps") steps i.Input.steps
  in
  check "LULESH" Platform.Opteron 120.0 10;
  check "LULESH" Platform.Sandy_bridge 150.0 10;
  check "LULESH" Platform.Broadwell 200.0 10;
  check "Cloverleaf" Platform.Broadwell 2000.0 60;
  check "Cloverleaf" Platform.Opteron 2000.0 30;
  check "AMG" Platform.Opteron 18.0 1;
  check "AMG" Platform.Broadwell 25.0 1;
  check "Optewe" Platform.Sandy_bridge 384.0 5;
  check "351.bwaves" Platform.Broadwell 1.0 50

let test_generalization_inputs () =
  let check name small large =
    let p = Option.get (Suite.find name) in
    Alcotest.(check (float 1e-9)) (name ^ " small") small
      (Suite.small_input p).Input.size;
    Alcotest.(check (float 1e-9)) (name ^ " large") large
      (Suite.large_input p).Input.size
  in
  check "LULESH" 180.0 250.0;
  check "AMG" 20.0 30.0;
  check "Cloverleaf" 1000.0 4000.0;
  check "Optewe" 384.0 768.0

let test_cloverleaf_table3_shares () =
  (* The Broadwell O3 runtime ratios for the top-5 kernels are pinned to
     Table 3: 6.3 / 2.9 / 3.5 / 3.5 / 4.2 percent. *)
  let program = Option.get (Suite.find "Cloverleaf") in
  let tc = Toolchain.make Platform.Broadwell in
  let input = Suite.tuning_input Platform.Broadwell program in
  let run =
    Exec.evaluate ~arch:tc.Toolchain.arch ~input
      (Toolchain.compile_uniform tc ~cv:Ft_flags.Cv.o3 program)
  in
  let share name =
    let r =
      List.find (fun (x : Exec.region_report) -> x.Exec.name = name)
        run.Exec.loops
    in
    100.0 *. r.Exec.seconds /. run.Exec.total_s
  in
  let expect name pct = Alcotest.(check (float 0.15)) name pct (share name) in
  expect "dt" 6.3;
  expect "cell3" 2.9;
  expect "cell7" 3.5;
  expect "mom9" 3.5;
  expect "acc" 4.2;
  (* "others are less than 3.0%" *)
  List.iter
    (fun (r : Exec.region_report) ->
      if
        not
          (List.mem r.Exec.name [ "dt"; "cell3"; "cell7"; "mom9"; "acc" ])
      then
        Alcotest.(check bool)
          (r.Exec.name ^ " below 3%")
          true
          (100.0 *. r.Exec.seconds /. run.Exec.total_s < 3.05))
    run.Exec.loops

let test_tables_render () =
  let t1 = Ft_util.Table.render (Suite.table1 ()) in
  let t2 = Ft_util.Table.render (Suite.table2 ()) in
  Alcotest.(check bool) "table1 mentions swim" true
    (Test_helpers.contains t1 "363.swim");
  Alcotest.(check bool) "table2 mentions processor flags" true
    (Test_helpers.contains t2 "-xCORE-AVX2")

let test_balance_calibration_is_exact () =
  (* Re-calibrating an already-calibrated program is a no-op to within
     the fixed point's tolerance. *)
  let program = Option.get (Suite.find "363.swim") in
  let tc = Toolchain.make Platform.Broadwell in
  let input = Suite.tuning_input Platform.Broadwell program in
  let t =
    (Exec.evaluate ~arch:tc.Toolchain.arch ~input
       (Toolchain.compile_uniform tc ~cv:Ft_flags.Cv.o3 program))
      .Exec.total_s
  in
  Alcotest.(check (float 0.05)) "swim total pinned to 9s" 9.0 t

let suite =
  ( "suite",
    [
      Alcotest.test_case "seven benchmarks" `Quick test_seven_benchmarks;
      Alcotest.test_case "table 1 metadata" `Quick test_table1_metadata;
      Alcotest.test_case "aliases" `Quick test_aliases;
      Alcotest.test_case "loop counts" `Quick test_loop_counts_in_paper_range;
      Alcotest.test_case "pgo instrumentability" `Quick
        test_pgo_instrumentable_flags;
      Alcotest.test_case "table 2 inputs" `Quick test_table2_inputs;
      Alcotest.test_case "small/large inputs" `Quick
        test_generalization_inputs;
      Alcotest.test_case "table 3 shares pinned" `Quick
        test_cloverleaf_table3_shares;
      Alcotest.test_case "tables render" `Quick test_tables_render;
      Alcotest.test_case "calibration totals" `Quick
        test_balance_calibration_is_exact;
    ] )
