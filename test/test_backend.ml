(* Separate entry point for the process-backend suite: the runtime
   forbids Unix.fork in any process that has ever spawned a domain, and
   the main test binary's suites do.  This binary therefore runs every
   domains-backend baseline at jobs = 1 (which is strictly sequential —
   no domain is ever created) so Procpool's forks stay legal. *)

let () =
  Ft_shard.Shard.install ();
  Alcotest.run "funcytuner-backend"
    [
      Suite_backend.suite;
      Suite_selfcheck.suite_processes;
      Suite_selfcheck.suite_sharded;
      Suite_serve.suite_e2e;
    ]
