(* Tests for the fault model and the fault-tolerant search layer: schedule
   purity, retry/quarantine/timeout policy, robust repeat aggregation,
   checkpoint/resume, and the acceptance property that every search
   completes under injected faults with a bit-identical result at any
   worker count. *)

open Ft_prog
module Fault = Ft_fault.Fault
module Engine = Ft_engine.Engine
module Cache = Ft_engine.Cache
module Quarantine = Ft_engine.Quarantine
module Checkpoint = Ft_engine.Checkpoint
module Telemetry = Ft_engine.Telemetry
module Stats = Ft_util.Stats
module Rng = Ft_util.Rng
module Cv = Ft_flags.Cv
module Result = Funcytuner.Result
module Tuner = Funcytuner.Tuner

let program = Option.get (Ft_suite.Suite.find "363.swim")
let platform = Platform.Broadwell
let toolchain = Ft_machine.Toolchain.make platform
let input = Ft_suite.Suite.tuning_input platform program

let faulty_policy ?(rate = 0.1) ?(fault_seed = 7) () =
  {
    Engine.default_policy with
    Engine.faults = Some (Fault.make ~seed:fault_seed ~rate ());
  }

let sample_jobs ?(n = 60) ?(seed = 11) () =
  let rng = Rng.create seed in
  Array.init n (fun i ->
      {
        Engine.build =
          Engine.Uniform { cv = Ft_flags.Space.sample rng; instrumented = false };
        rng = Rng.of_label rng (string_of_int i);
      })

(* --- the fault model ------------------------------------------------- *)

let test_schedule_is_pure () =
  let f = Fault.make ~seed:3 ~rate:0.5 () in
  let keys = List.init 200 (Printf.sprintf "key-%d") in
  let draw k = List.init 4 (fun attempt -> Fault.run_fault f ~key:k ~attempt) in
  let forward = List.map draw keys in
  let backward = List.rev_map draw (List.rev keys) in
  Alcotest.(check bool) "order of queries never matters" true
    (forward = backward);
  Alcotest.(check bool) "re-querying gives the same schedule" true
    (forward = List.map draw keys)

let test_all_fault_classes_appear () =
  let f = Fault.make ~seed:5 ~rate:1.0 () in
  let crashes = ref 0 and wrongs = ref 0 and hangs = ref 0 and oks = ref 0 in
  for i = 0 to 1999 do
    match Fault.run_fault f ~key:(Printf.sprintf "k%d" i) ~attempt:0 with
    | Fault.Run_ok -> incr oks
    | Fault.Crash _ -> incr crashes
    | Fault.Wrong_answer -> incr wrongs
    | Fault.Hang { factor; _ } ->
        Alcotest.(check bool) "hang factors are heavy-tailed (>= 50)" true
          (factor >= 50.0);
        incr hangs
  done;
  Alcotest.(check bool) "every run-fault class appears" true
    (!crashes > 0 && !wrongs > 0 && !hangs > 0 && !oks > 0);
  let quiet = Fault.make ~seed:5 ~rate:0.0 () in
  for i = 0 to 499 do
    Alcotest.(check bool) "rate 0 injects nothing" true
      (Fault.run_fault quiet ~key:(Printf.sprintf "k%d" i) ~attempt:0
      = Fault.Run_ok)
  done

let test_ice_persistent_and_hostile () =
  let f = Fault.make ~seed:9 ~rate:0.8 () in
  let rng = Rng.create 1 in
  let cvs = List.init 300 (fun _ -> Ft_flags.Space.sample rng) in
  let ice cv = Fault.ice f ~program:"p" ~module_name:"m" cv in
  Alcotest.(check bool) "ICE verdicts are stable" true
    (List.map ice cvs = List.map ice cvs);
  Alcotest.(check bool) "some CV ICEs at a high rate" true
    (List.exists ice cvs);
  List.iter
    (fun cv ->
      Alcotest.(check bool) "hostility is a multiplier >= 1" true
        (Fault.hostility cv >= 1.0))
    cvs

let test_corrupt_signature_differs () =
  List.iter
    (fun (key, expected) ->
      Alcotest.(check bool) "corrupted checksum never validates" false
        (Fault.corrupt_signature ~key expected = expected))
    (List.init 100 (fun i -> (Printf.sprintf "key-%d" i, i * 7919)))

let test_outlier_deterministic () =
  let f = Fault.make ~seed:2 ~rate:0.5 () in
  let draws () =
    List.init 300 (fun i ->
        Fault.outlier f ~key:(Printf.sprintf "k%d" (i / 5)) ~repeat:(i mod 5))
  in
  let first = draws () in
  Alcotest.(check bool) "outlier draws are reproducible" true (first = draws ());
  Alcotest.(check bool) "some repeats are outliers, most are not" true
    (List.exists Option.is_some first && List.exists Option.is_none first);
  List.iter
    (function
      | Some factor ->
          Alcotest.(check bool) "outlier factors inflate (>= 1.5)" true
            (factor >= 1.5)
      | None -> ())
    first

(* --- robust aggregation ----------------------------------------------- *)

let test_robust_representative () =
  Alcotest.(check int) "planted outlier is rejected" 0
    (Stats.robust_representative [| 1.02; 1.0; 0.98; 50.0 |]);
  Alcotest.(check int) "singleton picks the only sample" 0
    (Stats.robust_representative [| 42.0 |]);
  Alcotest.(check int) "identical samples pick the first" 0
    (Stats.robust_representative [| 2.0; 2.0; 2.0 |]);
  match Stats.robust_representative [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty input accepted"

(* --- engine recovery policy ------------------------------------------- *)

let outcomes ~jobs ~policy js =
  let engine = Engine.create ~jobs ~policy () in
  (engine, Engine.try_measure_batch engine ~toolchain ~program ~input js)

let test_try_batch_partial_and_deterministic () =
  let policy = faulty_policy ~rate:0.3 () in
  let _, seq = outcomes ~jobs:1 ~policy (sample_jobs ()) in
  let engine4, par = outcomes ~jobs:4 ~policy (sample_jobs ()) in
  Alcotest.(check bool) "outcome array bit-identical at jobs=1 and 4" true
    (seq = par);
  let ok = ref 0 and faulted = ref 0 in
  Array.iter
    (function Engine.Ok _ -> incr ok | _ -> incr faulted)
    par;
  Alcotest.(check bool) "mixed outcomes: good jobs survive bad siblings" true
    (!ok > 0 && !faulted > 0);
  let s = Telemetry.snapshot (Engine.telemetry engine4) in
  (* Counters record every occurrence, so successfully-retried transient
     faults push the tally above the number of terminal failures. *)
  Alcotest.(check bool) "every terminal failure is counted" true
    (Telemetry.faults s >= !faulted);
  Alcotest.(check bool) "terminal faults are quarantined" true
    (Quarantine.length (Engine.quarantine engine4) > 0)

let test_quarantine_hit_replays_outcome () =
  let policy = faulty_policy ~rate:0.3 () in
  let js = sample_jobs () in
  let engine, first = outcomes ~jobs:2 ~policy js in
  (* Same keys again on the same engine: quarantined keys short-circuit
     and must replay exactly the recorded outcome. *)
  let again = Engine.try_measure_batch engine ~toolchain ~program ~input js in
  Array.iter2
    (fun a b ->
      match (a, b) with
      | Engine.Ok _, Engine.Ok _ -> ()
      | a, b ->
          Alcotest.(check string) "replayed failure identical"
            (Engine.outcome_to_string a) (Engine.outcome_to_string b))
    first again;
  let s = Telemetry.snapshot (Engine.telemetry engine) in
  Alcotest.(check bool) "short-circuits are counted" true
    (s.Telemetry.quarantine_hits > 0)

let hang_only ~transient_fraction =
  {
    Fault.seed = 5;
    compile_fail_rate = 0.0;
    crash_rate = 0.0;
    wrong_answer_rate = 0.0;
    hang_rate = 0.95;
    outlier_rate = 0.0;
    transient_fraction;
  }

let test_timeouts_trip_and_quarantine () =
  (* Persistent hangs against a tight budget: factors are >= 50, so every
     hang trips a 60 s timeout on a ~9 s benchmark and retries never help. *)
  let policy =
    {
      (Engine.default_policy) with
      Engine.faults = Some (hang_only ~transient_fraction:0.0);
      timeout_s = 60.0;
    }
  in
  let engine, out = outcomes ~jobs:3 ~policy (sample_jobs ~n:40 ()) in
  let timeouts =
    Array.to_list out
    |> List.filter_map (function
         | Engine.Timed_out s -> Some s
         | _ -> None)
  in
  Alcotest.(check bool) "hangs become Timed_out" true (timeouts <> []);
  List.iter
    (fun s ->
      Alcotest.(check bool) "kill time exceeds the budget" true (s > 60.0))
    timeouts;
  let s = Telemetry.snapshot (Engine.telemetry engine) in
  Alcotest.(check bool) "timeouts counted and quarantined" true
    (s.Telemetry.timeouts > 0 && s.Telemetry.quarantined > 0)

let test_transient_faults_are_retried_away () =
  (* All-transient hangs clear within 1-2 retries, so with the default
     retry budget every job must come back Ok — at the cost of recorded
     retries and simulated backoff, never a quarantine entry. *)
  let policy =
    {
      (Engine.default_policy) with
      Engine.faults = Some (hang_only ~transient_fraction:1.0);
      timeout_s = 60.0;
    }
  in
  let engine, out = outcomes ~jobs:3 ~policy (sample_jobs ~n:40 ()) in
  Array.iter
    (fun o ->
      match o with
      | Engine.Ok _ -> ()
      | o -> Alcotest.fail ("transient fault survived: " ^ Engine.outcome_to_string o))
    out;
  let s = Telemetry.snapshot (Engine.telemetry engine) in
  Alcotest.(check bool) "retries happened" true (s.Telemetry.retries > 0);
  Alcotest.(check bool) "backoff was simulated, not slept" true
    (List.mem_assoc "backoff" s.Telemetry.timers);
  Alcotest.(check int) "nothing quarantined" 0
    (Quarantine.length (Engine.quarantine engine))

let test_repeats_deterministic () =
  let policy = { (faulty_policy ~rate:0.2 ()) with Engine.repeats = 5 } in
  let _, a = outcomes ~jobs:1 ~policy (sample_jobs ~n:30 ()) in
  let _, b = outcomes ~jobs:4 ~policy (sample_jobs ~n:30 ()) in
  Alcotest.(check bool) "repeated measurements bit-identical at any jobs"
    true (a = b)

(* --- quarantine persistence ------------------------------------------- *)

let test_quarantine_roundtrip () =
  let q = Quarantine.create () in
  Quarantine.add q "k1" (Quarantine.Build_failed "mod_3");
  Quarantine.add q "k2" (Quarantine.Crashed "persistent crash");
  Quarantine.add q "k3" Quarantine.Wrong_answer;
  Quarantine.add q "k4" (Quarantine.Timed_out 123.5);
  let path = Filename.temp_file "ft_quarantine" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Quarantine.save q ~path;
      let reloaded = Quarantine.load path in
      Alcotest.(check bool) "all four reasons round-trip" true
        (Quarantine.bindings q = Quarantine.bindings reloaded))

let test_quarantine_rejects_garbage () =
  let path = Filename.temp_file "ft_quarantine" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a quarantine file\n";
      close_out oc;
      match Quarantine.load path with
      | exception Quarantine.Corrupt { line; _ } ->
          Alcotest.(check int) "rejected at the header" 1 line
      | _ -> Alcotest.fail "garbage accepted")

let test_quarantine_preload_changes_nothing () =
  (* Handing a search the quarantine of a previous identical run removes
     work (hits) but must not change the result. *)
  let policy = faulty_policy ~rate:0.25 () in
  let run ?quarantine () =
    let engine = Engine.create ~jobs:2 ~policy ?quarantine () in
    let session =
      Tuner.make_session ~pool_size:30 ~engine ~platform ~program ~input
        ~seed:99 ()
    in
    (Tuner.run_cfr ~top_x:5 session, engine)
  in
  let cold, engine = run () in
  let preloaded = Quarantine.create () in
  List.iter
    (fun (k, r) -> Quarantine.add preloaded k r)
    (Quarantine.bindings (Engine.quarantine engine));
  let warm, warm_engine = run ~quarantine:preloaded () in
  Alcotest.(check bool) "result bit-identical with preloaded quarantine"
    true
    (cold.Result.speedup = warm.Result.speedup
    && cold.Result.configuration = warm.Result.configuration);
  let s = Telemetry.snapshot (Engine.telemetry warm_engine) in
  Alcotest.(check bool) "quarantine hits avoided re-trying" true
    (s.Telemetry.quarantine_hits > 0)

(* --- checkpoint/resume ------------------------------------------------ *)

let with_checkpoint_path f =
  let path = Filename.temp_file "ft_ck" ".snap" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path ^ ".quarantine"; path ^ ".commit" ])
    (fun () -> f path)

let test_checkpoint_roundtrip () =
  with_checkpoint_path @@ fun path ->
  let ck = Checkpoint.create ~path ~every:8 () in
  let engine =
    Engine.create ~jobs:2 ~policy:(faulty_policy ~rate:0.3 ()) ~checkpoint:ck ()
  in
  ignore (Engine.try_measure_batch engine ~toolchain ~program ~input (sample_jobs ()));
  Engine.flush_checkpoint engine;
  match Checkpoint.load ck with
  | None -> Alcotest.fail "nothing to resume from after flush"
  | Some (cache, quarantine) ->
      Alcotest.(check bool) "cache snapshot bit-exact" true
        (Cache.bindings cache = Cache.bindings (Engine.cache engine));
      Alcotest.(check bool) "quarantine snapshot bit-exact" true
        (Quarantine.bindings quarantine
        = Quarantine.bindings (Engine.quarantine engine))

let test_checkpoint_resume_bit_identical () =
  (* Simulated kill: run once with periodic snapshots and *without* a final
     flush, as if the process died between ticks; then resume from whatever
     made it to disk and check the search fast-forwards to the same
     answer with strictly less work. *)
  with_checkpoint_path @@ fun path ->
  let policy = faulty_policy ~rate:0.2 () in
  let search engine =
    let session =
      Tuner.make_session ~pool_size:30 ~engine ~platform ~program ~input
        ~seed:5150 ()
    in
    Tuner.run_cfr ~top_x:5 session
  in
  let ck = Checkpoint.create ~path ~every:8 () in
  let first = search (Engine.create ~jobs:2 ~policy ~checkpoint:ck ()) in
  Alcotest.(check bool) "periodic snapshots hit the disk" true
    (Checkpoint.exists ck);
  let cache, quarantine = Option.get (Checkpoint.load ck) in
  let resumed_engine = Engine.create ~jobs:2 ~policy ~cache ~quarantine () in
  let resumed = search resumed_engine in
  Alcotest.(check bool) "resumed result bit-identical" true
    (first.Result.speedup = resumed.Result.speedup
    && first.Result.trace = resumed.Result.trace
    && first.Result.configuration = resumed.Result.configuration);
  let s = Telemetry.snapshot (Engine.telemetry resumed_engine) in
  Alcotest.(check bool) "resume fast-forwards through snapshotted work" true
    (s.Telemetry.cache_hits > 0)

(* --- the checkpoint commit protocol ----------------------------------- *)

exception Simulated_crash

let test_commit_write_order () =
  with_checkpoint_path @@ fun path ->
  let stages = ref [] in
  let ck =
    Checkpoint.create ~path ~on_write:(fun s -> stages := s :: !stages) ()
  in
  let cache = Cache.create () and quarantine = Quarantine.create () in
  Checkpoint.flush ck ~cache ~quarantine;
  Checkpoint.flush ck ~cache ~quarantine;
  Alcotest.(check (list string)) "quarantine, then cache, then commit"
    [ "quarantine"; "cache"; "commit"; "quarantine"; "cache"; "commit" ]
    (List.rev !stages)

let test_torn_save_is_caught () =
  (* Deliberately reintroduce the pre-protocol bug: crash between the
     quarantine and cache writes, pairing a newer quarantine with an older
     cache on disk, and check that load reports the tear (and that the
     safe tear direction holds: the survivor carries the NEWER
     quarantine). *)
  with_checkpoint_path @@ fun path ->
  let crash = ref false in
  let on_write stage =
    if !crash && stage = "quarantine" then raise Simulated_crash
  in
  let ck = Checkpoint.create ~path ~on_write () in
  let cache = Cache.create () and quarantine = Quarantine.create () in
  Quarantine.add quarantine "key-a" Quarantine.Wrong_answer;
  Checkpoint.flush ck ~cache ~quarantine;
  Quarantine.add quarantine "key-b" (Quarantine.Crashed "sig11");
  crash := true;
  (try Checkpoint.flush ck ~cache ~quarantine
   with Simulated_crash -> ());
  let warnings = ref [] in
  let warn ~line:_ ~reason = warnings := reason :: !warnings in
  (match Checkpoint.load ~warn ck with
  | None -> Alcotest.fail "a torn checkpoint must still load"
  | Some (_, q) ->
      Alcotest.(check int) "survivor carries the newer quarantine" 2
        (Quarantine.length q));
  Alcotest.(check bool) "the tear is reported" true
    (List.exists
       (fun r -> Test_helpers.contains r "torn checkpoint: quarantine")
       !warnings)

let test_missing_commit_record_warns () =
  with_checkpoint_path @@ fun path ->
  let ck = Checkpoint.create ~path () in
  Checkpoint.flush ck ~cache:(Cache.create ())
    ~quarantine:(Quarantine.create ());
  Sys.remove (Checkpoint.commit_path ck);
  let warnings = ref [] in
  let warn ~line:_ ~reason = warnings := reason :: !warnings in
  (match Checkpoint.load ~warn ck with
  | None -> Alcotest.fail "a pre-protocol snapshot must still load"
  | Some _ -> ());
  Alcotest.(check bool) "pre-protocol snapshot is flagged" true
    (List.exists
       (fun r -> Test_helpers.contains r "no commit record")
       !warnings)

let test_concurrent_tick_saves_serialize () =
  (* Four domains racing [tick ~every:1]: every save transaction must run
     to completion before the next begins — the stage log is a sequence of
     complete quarantine/cache/commit triples, never interleaved. *)
  with_checkpoint_path @@ fun path ->
  let stages = ref [] in
  let lock = Mutex.create () in
  let on_write s = Mutex.protect lock (fun () -> stages := s :: !stages) in
  let ck = Checkpoint.create ~path ~every:1 ~on_write () in
  let cache = Cache.create () and quarantine = Quarantine.create () in
  let ticker () =
    for _ = 1 to 25 do
      ignore (Checkpoint.tick ck ~cache ~quarantine : bool)
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn ticker) in
  List.iter Domain.join domains;
  let rec well_formed = function
    | [] -> true
    | "quarantine" :: "cache" :: "commit" :: rest -> well_formed rest
    | _ -> false
  in
  let log = List.rev !stages in
  Alcotest.(check bool) "save transactions never interleave" true
    (well_formed log);
  Alcotest.(check int) "every due tick saved" (3 * 100) (List.length log)

(* --- the searches under fire ------------------------------------------ *)

let faulty_session ?(seed = 1234) ?(jobs = 2) () =
  let engine = Engine.create ~jobs ~policy:(faulty_policy ()) () in
  Tuner.make_session ~pool_size:25 ~engine ~platform ~program ~input ~seed ()

let check_valid what (r : Result.t) =
  Alcotest.(check bool) (what ^ " returns a finite positive speedup") true
    (Float.is_finite r.Result.speedup && r.Result.speedup > 0.0)

let test_searches_complete_under_faults () =
  let session = faulty_session () in
  let ctx = session.Tuner.ctx in
  check_valid "random" (Funcytuner.Random_search.run ctx);
  check_valid "fr" (Funcytuner.Fr.run ctx session.Tuner.outline);
  check_valid "cfr" (Tuner.run_cfr ~top_x:5 session);
  let collection = Lazy.force session.Tuner.collection in
  check_valid "greedy" (Funcytuner.Greedy.run ctx collection).Funcytuner.Greedy.realized;
  check_valid "adaptive" (Funcytuner.Adaptive.run ~top_x:5 ctx collection);
  check_valid "opentuner"
    (Ft_opentuner.Ensemble.run ctx).Ft_opentuner.Ensemble.result;
  let ce =
    Ft_baselines.Ce.run
      ?faults:(Engine.policy (Funcytuner.Context.engine ctx)).Engine.faults
      ~toolchain ~program ~input ~rng:(Rng.create 4) ()
  in
  Alcotest.(check bool) "ce completes with a finite speedup" true
    (Float.is_finite ce.Ft_baselines.Ce.speedup
    && ce.Ft_baselines.Ce.speedup > 0.0)

let test_searches_deterministic_under_faults () =
  (* The acceptance property of the fault layer: an armed fault model does
     not break deterministic parallelism. *)
  let report jobs =
    Tuner.run_all ~top_x:5 (faulty_session ~jobs ())
  in
  let seq = report 1 and par = report 4 in
  Alcotest.(check bool) "random bit-identical" true
    (seq.Tuner.random = par.Tuner.random);
  Alcotest.(check bool) "fr bit-identical" true (seq.Tuner.fr = par.Tuner.fr);
  Alcotest.(check bool) "cfr bit-identical" true (seq.Tuner.cfr = par.Tuner.cfr);
  Alcotest.(check bool) "greedy bit-identical" true
    (seq.Tuner.greedy = par.Tuner.greedy)

let test_winner_is_never_quarantined () =
  let session = faulty_session ~seed:777 () in
  let engine = Funcytuner.Context.engine session.Tuner.ctx in
  let check_winner (r : Result.t) =
    let build =
      match r.Result.configuration with
      | Result.Whole_program cv ->
          Engine.Uniform { cv; instrumented = false }
      | Result.Per_module assignment ->
          Engine.Assigned { assignment; instrumented = false }
    in
    let key = Engine.key ~toolchain ~program ~input build in
    Alcotest.(check bool) "winning configuration is fault-free" true
      (Quarantine.find (Engine.quarantine engine) key = None)
  in
  check_winner (Funcytuner.Random_search.run session.Tuner.ctx);
  check_winner (Funcytuner.Fr.run session.Tuner.ctx session.Tuner.outline);
  check_winner (Tuner.run_cfr ~top_x:5 session)

let suite =
  ( "fault",
    [
      Alcotest.test_case "fault schedule is pure" `Quick test_schedule_is_pure;
      Alcotest.test_case "all fault classes appear" `Quick
        test_all_fault_classes_appear;
      Alcotest.test_case "ICEs persistent, hostility >= 1" `Quick
        test_ice_persistent_and_hostile;
      Alcotest.test_case "corrupted signature never validates" `Quick
        test_corrupt_signature_differs;
      Alcotest.test_case "outlier draws deterministic" `Quick
        test_outlier_deterministic;
      Alcotest.test_case "robust representative" `Quick
        test_robust_representative;
      Alcotest.test_case "partial batch, deterministic outcomes" `Quick
        test_try_batch_partial_and_deterministic;
      Alcotest.test_case "quarantine hit replays outcome" `Quick
        test_quarantine_hit_replays_outcome;
      Alcotest.test_case "timeouts trip and quarantine" `Quick
        test_timeouts_trip_and_quarantine;
      Alcotest.test_case "transient faults retried away" `Quick
        test_transient_faults_are_retried_away;
      Alcotest.test_case "repeats deterministic at any jobs" `Quick
        test_repeats_deterministic;
      Alcotest.test_case "quarantine save/load round-trip" `Quick
        test_quarantine_roundtrip;
      Alcotest.test_case "quarantine rejects garbage" `Quick
        test_quarantine_rejects_garbage;
      Alcotest.test_case "preloaded quarantine changes nothing" `Quick
        test_quarantine_preload_changes_nothing;
      Alcotest.test_case "checkpoint round-trip" `Quick
        test_checkpoint_roundtrip;
      Alcotest.test_case "checkpoint resume bit-identical" `Quick
        test_checkpoint_resume_bit_identical;
      Alcotest.test_case "commit protocol write order" `Quick
        test_commit_write_order;
      Alcotest.test_case "torn save caught by commit record" `Quick
        test_torn_save_is_caught;
      Alcotest.test_case "missing commit record warns" `Quick
        test_missing_commit_record_warns;
      Alcotest.test_case "concurrent tick saves serialize" `Quick
        test_concurrent_tick_saves_serialize;
      Alcotest.test_case "searches complete under faults" `Quick
        test_searches_complete_under_faults;
      Alcotest.test_case "searches deterministic under faults" `Quick
        test_searches_deterministic_under_faults;
      Alcotest.test_case "winner never quarantined" `Quick
        test_winner_is_never_quarantined;
    ] )
