(* Tests for ft_obs: trace determinism across worker counts, exporter
   round-trips, report rendering, and — the load-bearing one — that every
   Telemetry counter is recomputable from a wall-clock trace. *)

module Trace = Ft_obs.Trace
module Event = Ft_obs.Event
module Export = Ft_obs.Export
module Report = Ft_obs.Report
module Json = Ft_obs.Json
module Engine = Ft_engine.Engine
module Telemetry = Ft_engine.Telemetry
module Tuner = Funcytuner.Tuner

let swim = Option.get (Ft_suite.Suite.find "swim")
let platform = Ft_prog.Platform.Broadwell

(* One full tune (profile -> collect -> prune -> search) on a small pool:
   every phase and event kind the trace schema knows about gets
   exercised. *)
let run_cfr ?policy ?trace ~jobs ~pool () =
  let engine = Engine.create ~jobs ?policy ?trace () in
  let session =
    Tuner.make_session ~pool_size:pool ~engine ~platform ~program:swim
      ~input:(Ft_suite.Suite.tuning_input platform swim)
      ~seed:42 ()
  in
  (Tuner.run_cfr session, engine)

let faulty_policy =
  {
    Engine.default_policy with
    Engine.faults = Some (Ft_fault.Fault.make ~seed:1 ~rate:0.4 ());
    timeout_s = 60.0;
    repeats = 3;
  }

let jsonl ?policy ~clock ~jobs ~pool () =
  let trace = Trace.create ~clock () in
  let result, _ = run_cfr ?policy ~trace ~jobs ~pool () in
  (result, String.concat "\n" (Export.jsonl_lines trace) ^ "\n", trace)

(* --- determinism across worker counts --------------------------------- *)

let test_results_jobs_independent () =
  (* The Makefile smoke check, in-process: the whole tune result is
     bit-identical at --jobs 1 and --jobs 4. *)
  let r1, _ = run_cfr ~jobs:1 ~pool:24 () in
  let r4, _ = run_cfr ~jobs:4 ~pool:24 () in
  Alcotest.(check bool) "results identical across jobs" true (r1 = r4)

let test_logical_trace_jobs_independent () =
  let r1, bytes1, _ = jsonl ~clock:Trace.Logical ~jobs:1 ~pool:24 () in
  let r4, bytes4, _ = jsonl ~clock:Trace.Logical ~jobs:4 ~pool:24 () in
  Alcotest.(check bool) "results identical" true (r1 = r4);
  Alcotest.(check string) "logical trace bytes identical" bytes1 bytes4

let test_trace_off_invariance () =
  (* Attaching a trace must not change what the search computes. *)
  let bare, _ = run_cfr ~jobs:1 ~pool:24 () in
  let traced, _ =
    run_cfr ~trace:(Trace.create ~clock:Trace.Wall ()) ~jobs:1 ~pool:24 ()
  in
  Alcotest.(check bool) "tracing is observational only" true (bare = traced)

(* --- counter derivability ---------------------------------------------- *)

let check_counters ~msg (s : Telemetry.snapshot) (d : Report.counters) =
  let ck name a b = Alcotest.(check int) (msg ^ ": " ^ name) a b in
  ck "builds" s.Telemetry.builds d.Report.builds;
  ck "runs" s.Telemetry.runs d.Report.runs;
  ck "cache_hits" s.Telemetry.cache_hits d.Report.cache_hits;
  ck "cache_misses" s.Telemetry.cache_misses d.Report.cache_misses;
  ck "retries" s.Telemetry.retries d.Report.retries;
  ck "build_failures" s.Telemetry.build_failures d.Report.build_failures;
  ck "crashes" s.Telemetry.crashes d.Report.crashes;
  ck "wrong_answers" s.Telemetry.wrong_answers d.Report.wrong_answers;
  ck "timeouts" s.Telemetry.timeouts d.Report.timeouts;
  ck "outliers" s.Telemetry.outliers d.Report.outliers;
  ck "quarantined" s.Telemetry.quarantined d.Report.quarantined;
  ck "quarantine_hits" s.Telemetry.quarantine_hits d.Report.quarantine_hits;
  ck "worker_crashes" s.Telemetry.worker_crashes d.Report.worker_crashes;
  let sorted l = List.sort compare l in
  Alcotest.(check (list (pair string (float 1e-9))))
    (msg ^ ": timers") (sorted s.Telemetry.timers) (sorted d.Report.timers)

let derive_of_trace trace =
  Report.derive (List.map (fun s -> s.Trace.event) (Trace.events trace))

let test_counters_derivable_fault_free () =
  let trace = Trace.create ~clock:Trace.Wall () in
  let _, engine = run_cfr ~trace ~jobs:1 ~pool:24 () in
  check_counters ~msg:"fault-free"
    (Telemetry.snapshot (Engine.telemetry engine))
    (derive_of_trace trace)

let test_counters_derivable_faulty () =
  (* A fault rate high enough to exercise every counter: ICEs, crashes,
     wrong answers, timeouts, retries, outliers, quarantine adds/hits. *)
  let trace = Trace.create ~clock:Trace.Wall () in
  let _, engine =
    run_cfr ~policy:faulty_policy ~trace ~jobs:1 ~pool:40 ()
  in
  let s = Telemetry.snapshot (Engine.telemetry engine) in
  Alcotest.(check bool) "faults actually injected" true
    (Telemetry.faults s > 0);
  check_counters ~msg:"faulty" s (derive_of_trace trace)

(* --- exporters and report ---------------------------------------------- *)

let with_temp_file content f =
  let path = Filename.temp_file "ft_obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc content);
      f path)

let test_jsonl_roundtrip () =
  let _, bytes, trace = jsonl ~clock:Trace.Wall ~jobs:1 ~pool:12 () in
  with_temp_file bytes @@ fun path ->
  match Report.load path with
  | Error msg -> Alcotest.fail ("load failed: " ^ msg)
  | Ok t ->
      Alcotest.(check string) "clock" "wall" t.Report.clock;
      Alcotest.(check int) "every event survives" (Trace.length trace)
        (List.length t.Report.entries)

let test_jsonl_roundtrip_logical () =
  let _, bytes, trace = jsonl ~clock:Trace.Logical ~jobs:1 ~pool:12 () in
  with_temp_file bytes @@ fun path ->
  match Report.load path with
  | Error msg -> Alcotest.fail ("load failed: " ^ msg)
  | Ok t ->
      Alcotest.(check string) "clock" "logical" t.Report.clock;
      Alcotest.(check int) "every event survives" (Trace.length trace)
        (List.length t.Report.entries)

let test_load_rejects_garbage () =
  (let r = with_temp_file "not a trace\n" (fun path -> Report.load path) in
   match r with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "garbage accepted");
  let truncated =
    "{\"trace\":\"funcytuner/1\",\"clock\":\"wall\",\"events\":5}\n"
  in
  match with_temp_file truncated (fun path -> Report.load path) with
  | Error msg ->
      Alcotest.(check bool) "mentions the count mismatch" true
        (Test_helpers.contains msg "5")
  | Ok _ -> Alcotest.fail "truncated trace accepted"

let test_chrome_export_parses () =
  let trace = Trace.create ~clock:Trace.Wall () in
  let _ = run_cfr ~trace ~jobs:1 ~pool:12 () in
  match Json.of_string (Export.chrome_string trace) with
  | Error msg -> Alcotest.fail ("chrome export is not JSON: " ^ msg)
  | Ok json -> (
      match Json.member "traceEvents" json with
      | Some (Json.List events) ->
          Alcotest.(check int) "one trace_event per recorded event"
            (Trace.length trace) (List.length events)
      | _ -> Alcotest.fail "missing traceEvents array")

let test_report_sections () =
  let _, bytes, _ =
    jsonl ~policy:faulty_policy ~clock:Trace.Wall ~jobs:1 ~pool:24 ()
  in
  with_temp_file bytes @@ fun path ->
  match Report.load path with
  | Error msg -> Alcotest.fail ("load failed: " ^ msg)
  | Ok t ->
      let rendered = Report.render t in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("section: " ^ needle) true
            (Test_helpers.contains rendered needle))
        [
          "Per-phase breakdown";
          "Cache hit-rate over time";
          "Convergence";
          "Faults and recovery";
          "Per-loop focused pools";
          "Derived engine counters";
          "search";
          "collect";
        ]

let suite =
  ( "obs",
    [
      Alcotest.test_case "results independent of --jobs" `Quick
        test_results_jobs_independent;
      Alcotest.test_case "logical trace bytes independent of --jobs" `Quick
        test_logical_trace_jobs_independent;
      Alcotest.test_case "tracing changes no result" `Quick
        test_trace_off_invariance;
      Alcotest.test_case "counters derivable (fault-free)" `Quick
        test_counters_derivable_fault_free;
      Alcotest.test_case "counters derivable (faulty)" `Quick
        test_counters_derivable_faulty;
      Alcotest.test_case "jsonl round-trip (wall)" `Quick test_jsonl_roundtrip;
      Alcotest.test_case "jsonl round-trip (logical)" `Quick
        test_jsonl_roundtrip_logical;
      Alcotest.test_case "malformed traces rejected" `Quick
        test_load_rejects_garbage;
      Alcotest.test_case "chrome export parses" `Quick
        test_chrome_export_parses;
      Alcotest.test_case "report renders every section" `Quick
        test_report_sections;
    ] )
