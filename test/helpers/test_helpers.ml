(* Shared helpers for the test suites — one home for the small utilities
   every suite_*.ml used to re-invent. *)

(* Substring test (no external string library needed). *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else
    let rec at i =
      if i + n > h then false
      else if String.sub haystack i n = needle then true
      else at (i + 1)
    in
    at 0

(* A fresh path in a throwaway temp directory, for tests exercising
   on-disk persistence (cache files, checkpoints, traces). *)
let temp_path prefix suffix =
  let path = Filename.temp_file ("funcytuner-" ^ prefix) suffix in
  Sys.remove path;
  path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let remove_if_exists path = if Sys.file_exists path then Sys.remove path

(* A fresh empty directory under the system temp dir; the caller owns
   cleanup (tests that crash leave it for the OS to reap). *)
let temp_dir prefix =
  let path = Filename.temp_file ("funcytuner-" ^ prefix) ".d" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter
      (fun name -> remove_tree (Filename.concat path name))
      (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path
