(* Tests for the process-isolated evaluation backends (DESIGN.md
   sections 11 and 17): the Procpool crash taxonomy, the sharded
   coordinator/worker pool and its work stealing, the differential
   property that the processes AND sharded backends are byte-identical
   to the domains backend — results and logical traces, at any --jobs or
   --nodes, even while workers or whole nodes are being SIGKILLed
   mid-batch — and QCheck crash-injection properties for the
   Atomic_file/Cache persistence layer the multi-process modes rest
   on. *)

open Ft_prog
module Backend = Ft_engine.Backend
module Procpool = Ft_engine.Procpool
module Atomic_file = Ft_engine.Atomic_file
module Cache = Ft_engine.Cache
module Quarantine = Ft_engine.Quarantine
module Engine = Ft_engine.Engine
module Telemetry = Ft_engine.Telemetry
module Exec = Ft_machine.Exec
module Trace = Ft_obs.Trace
module Export = Ft_obs.Export
module Tuner = Funcytuner.Tuner
module Rng = Ft_util.Rng
module Shard = Ft_shard.Shard

let swim = Option.get (Ft_suite.Suite.find "swim")
let platform = Platform.Broadwell
let toolchain = Ft_machine.Toolchain.make platform
let input = Ft_suite.Suite.tuning_input platform swim
let quiet_load path = Cache.load ~warn:(fun ~line:_ ~reason:_ -> ()) path

(* --- Backend naming ---------------------------------------------------- *)

let test_backend_names () =
  List.iter
    (fun b ->
      Alcotest.(check bool)
        ("of_name round-trips " ^ Backend.to_name b)
        true
        (Backend.of_name (Backend.to_name b) = Some b))
    Backend.all;
  Alcotest.(check bool) "garbage rejected" true
    (Backend.of_name "threads" = None);
  Alcotest.(check bool) "default is domains" true
    (Backend.default = Backend.Domains)

(* --- Procpool: the forked worker pool --------------------------------- *)

let ok_exn = function
  | Stdlib.Ok v -> v
  | Stdlib.Error f -> Alcotest.fail (Procpool.failure_to_string f)

let test_procpool_map_in_order () =
  (* Uneven per-item work, so a dynamic schedule reorders completions:
     results must still land by submission index, at any worker count. *)
  let items = Array.init 100 (fun i -> i) in
  let work i =
    let spins = if i mod 9 = 0 then 20000 else 100 in
    let acc = ref i in
    for _ = 1 to spins do
      acc := (!acc * 31) mod 65537
    done;
    (i, i * i)
  in
  List.iter
    (fun workers ->
      let results = Procpool.map ~workers work items in
      Alcotest.(check int) "all slots filled" 100 (Array.length results);
      Array.iteri
        (fun idx r ->
          let i, sq = ok_exn r in
          Alcotest.(check int) "submission order preserved" idx i;
          Alcotest.(check int) "value correct" (idx * idx) sq)
        results)
    [ 1; 4 ]

let test_procpool_raised_is_isolated () =
  (* A raising closure poisons only its own slot; the worker survives to
     take more jobs (no respawn needed, no sibling loss). *)
  let work i = if i mod 13 = 7 then failwith (string_of_int i) else i + 1 in
  let results = Procpool.map ~workers:3 work (Array.init 80 (fun i -> i)) in
  Array.iteri
    (fun i -> function
      | Stdlib.Ok v -> Alcotest.(check int) "healthy slot" (i + 1) v
      | Stdlib.Error (Procpool.Raised msg) ->
          Alcotest.(check int) "raising index only" 7 (i mod 13);
          Alcotest.(check bool) "original exception carried" true
            (Test_helpers.contains msg (string_of_int i))
      | Stdlib.Error (Procpool.Crashed c) ->
          Alcotest.fail ("raise escalated to crash: " ^ Procpool.crash_to_string c))
    results

let test_procpool_on_result_once_per_index () =
  let seen = ref [] in
  let results =
    Procpool.map ~workers:4
      ~on_result:(fun i r -> seen := (i, Stdlib.Result.is_ok r) :: !seen)
      (fun i -> i * 2)
      (Array.init 50 (fun i -> i))
  in
  Alcotest.(check int) "all results" 50 (Array.length results);
  let indices = List.sort compare (List.map fst !seen) in
  Alcotest.(check (list int))
    "on_result fired exactly once per index"
    (List.init 50 (fun i -> i))
    indices;
  Alcotest.(check bool) "all reported ok" true (List.for_all snd !seen)

let test_procpool_kill_surfaces_as_crash () =
  (* The chaos hook: the first worker SIGKILLs itself after completing
     two jobs.  Its in-flight job must surface as Crashed (with the
     signal named), every other job must still complete on the respawned
     or surviving workers. *)
  let results =
    Procpool.map ~workers:2 ~kill_first_worker_after:2
      (fun i -> i * 3)
      (Array.init 30 (fun i -> i))
  in
  let crashed = ref 0 in
  Array.iteri
    (fun i -> function
      | Stdlib.Ok v -> Alcotest.(check int) "survivor correct" (i * 3) v
      | Stdlib.Error (Procpool.Crashed { detail; _ }) ->
          incr crashed;
          Alcotest.(check bool) "signal named in detail" true
            (Test_helpers.contains detail "SIGKILL")
      | Stdlib.Error (Procpool.Raised msg) ->
          Alcotest.fail ("kill surfaced as Raised: " ^ msg))
    results;
  Alcotest.(check int) "exactly the in-flight job is lost" 1 !crashed

let test_procpool_rejects_bad_workers () =
  match Procpool.map ~workers:0 (fun i -> i) [| 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "workers=0 accepted"

(* --- Shard: the coordinator/worker pool with work stealing ------------- *)

let test_shard_map_in_order () =
  (* Skewed per-item work concentrated in one contiguous shard, so the
     initial partition is maximally unbalanced and completion order
     depends on stealing: results must still land by submission index,
     at any node count. *)
  let items = Array.init 100 (fun i -> i) in
  let work i =
    let spins = if i < 25 then 20000 else 100 in
    let acc = ref i in
    for _ = 1 to spins do
      acc := (!acc * 31) mod 65537
    done;
    (i, i * i)
  in
  List.iter
    (fun nodes ->
      let results = Shard.map ~nodes work items in
      Alcotest.(check int) "all slots filled" 100 (Array.length results);
      Array.iteri
        (fun idx r ->
          let i, sq = ok_exn r in
          Alcotest.(check int) "submission order preserved" idx i;
          Alcotest.(check int) "value correct" (idx * idx) sq)
        results)
    [ 1; 3; 4 ]

let test_shard_raised_is_isolated () =
  let work i = if i mod 13 = 7 then failwith (string_of_int i) else i + 1 in
  let results = Shard.map ~nodes:3 work (Array.init 80 (fun i -> i)) in
  Array.iteri
    (fun i -> function
      | Stdlib.Ok v -> Alcotest.(check int) "healthy slot" (i + 1) v
      | Stdlib.Error (Procpool.Raised msg) ->
          Alcotest.(check int) "raising index only" 7 (i mod 13);
          Alcotest.(check bool) "original exception carried" true
            (Test_helpers.contains msg (string_of_int i))
      | Stdlib.Error (Procpool.Crashed c) ->
          Alcotest.fail ("raise escalated to crash: " ^ Procpool.crash_to_string c))
    results

let test_shard_on_result_once_per_index () =
  let seen = ref [] in
  let results =
    Shard.map ~nodes:4
      ~on_result:(fun i r -> seen := (i, Stdlib.Result.is_ok r) :: !seen)
      (fun i -> i * 2)
      (Array.init 50 (fun i -> i))
  in
  Alcotest.(check int) "all results" 50 (Array.length results);
  let indices = List.sort compare (List.map fst !seen) in
  Alcotest.(check (list int))
    "on_result fired exactly once per index"
    (List.init 50 (fun i -> i))
    indices;
  Alcotest.(check bool) "all reported ok" true (List.for_all snd !seen)

let test_shard_kill_surfaces_as_crash () =
  (* The chaos hook: node 0 SIGKILLs itself after completing two jobs.
     Exactly its in-flight job is lost (as Crashed, with the signal
     named); its queued shard and every other job complete on the
     survivors or the respawn. *)
  let results =
    Shard.map ~nodes:2 ~kill_first_node_after:2
      (fun i -> i * 3)
      (Array.init 30 (fun i -> i))
  in
  let crashed = ref 0 in
  Array.iteri
    (fun i -> function
      | Stdlib.Ok v -> Alcotest.(check int) "survivor correct" (i * 3) v
      | Stdlib.Error (Procpool.Crashed { detail; _ }) ->
          incr crashed;
          Alcotest.(check bool) "signal named in detail" true
            (Test_helpers.contains detail "SIGKILL")
      | Stdlib.Error (Procpool.Raised msg) ->
          Alcotest.fail ("kill surfaced as Raised: " ^ msg))
    results;
  Alcotest.(check int) "exactly the in-flight job is lost" 1 !crashed

let test_shard_orphaned_shard_migrates () =
  (* Kill node 0 before it completes anything: its whole shard (minus
     the one in-flight casualty) must migrate through the orphan pool
     and still complete — no queued job is ever lost with a node. *)
  let results =
    Shard.map ~nodes:3 ~kill_first_node_after:0
      (fun i -> i + 100)
      (Array.init 60 (fun i -> i))
  in
  let crashed = ref 0 in
  Array.iteri
    (fun i -> function
      | Stdlib.Ok v -> Alcotest.(check int) "migrated job correct" (i + 100) v
      | Stdlib.Error _ -> incr crashed)
    results;
  Alcotest.(check int) "only the in-flight job is a casualty" 1 !crashed

let test_shard_rejects_bad_nodes () =
  match Shard.map ~nodes:0 (fun i -> i) [| 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nodes=0 accepted"

(* --- differential: processes backend vs domains backend ---------------- *)

(* One full tune under a given backend and jobs count, with a logical
   trace attached: returns the algorithm's result and the trace bytes.
   The engine is created explicitly so the trace and telemetry are ours
   to inspect. *)
let run_algo ?kill_workers_after ?kill_node_after ?checkpoint ~backend ~jobs
    algo =
  let trace = Trace.create ~clock:Trace.Logical () in
  let checkpoint =
    Option.map
      (fun (path, format) -> Ft_engine.Checkpoint.create ~path ~format ())
      checkpoint
  in
  (* [jobs] doubles as the node count: each backend reads its own knob
     and ignores the other, so one matrix covers both. *)
  let engine =
    Engine.create ~jobs ~nodes:jobs ~backend ?kill_workers_after
      ?kill_node_after ?checkpoint ~trace ()
  in
  let session =
    Tuner.make_session ~pool_size:24 ~engine ~platform ~program:swim
      ~input ~seed:42 ()
  in
  let result =
    match algo with
    | `Cfr -> Tuner.run_cfr session
    | `Fr -> Funcytuner.Fr.run session.Tuner.ctx session.Tuner.outline
    | `Random -> Funcytuner.Random_search.run session.Tuner.ctx
    | `AdaptiveSh ->
        Funcytuner.Adaptive_sh.run session.Tuner.ctx
          (Lazy.force session.Tuner.collection)
  in
  Engine.flush_checkpoint engine;
  let bytes = String.concat "\n" (Export.jsonl_lines trace) ^ "\n" in
  (result, bytes, engine)

let check_differential algo name =
  let base_result, base_bytes, _ =
    run_algo ~backend:Backend.Domains ~jobs:1 algo
  in
  List.iter
    (fun (backend, jobs) ->
      let result, bytes, _ = run_algo ~backend ~jobs algo in
      let tag =
        Printf.sprintf "%s %s/%d" name (Backend.to_name backend) jobs
      in
      Alcotest.(check bool)
        (tag ^ ": result bit-identical to domains -j1")
        true (result = base_result);
      Alcotest.(check string)
        (tag ^ ": logical trace byte-identical to domains -j1")
        base_bytes bytes)
    [
      (Backend.Processes, 1);
      (Backend.Processes, 2);
      (Backend.Processes, 4);
      (Backend.Sharded, 1);
      (Backend.Sharded, 2);
      (Backend.Sharded, 4);
    ]

let test_differential_cfr () = check_differential `Cfr "cfr"
let test_differential_fr () = check_differential `Fr "fr"
let test_differential_random () = check_differential `Random "random"

let test_differential_adaptive_sh () =
  check_differential `AdaptiveSh "adaptive-sh"

let test_differential_survives_worker_kills () =
  (* The acceptance property end-to-end: SIGKILL a worker on the first
     round of every batch, and the tune must still be byte-identical —
     result and logical trace — to an uninterrupted domains -j1 run,
     with the crashes visible in telemetry (and only there). *)
  let base_result, base_bytes, _ =
    run_algo ~backend:Backend.Domains ~jobs:1 `Cfr
  in
  let result, bytes, engine =
    run_algo ~backend:Backend.Processes ~jobs:4 ~kill_workers_after:3 `Cfr
  in
  Alcotest.(check bool) "result identical despite kills" true
    (result = base_result);
  Alcotest.(check string) "logical trace identical despite kills"
    base_bytes bytes;
  let s = Telemetry.snapshot (Engine.telemetry engine) in
  Alcotest.(check bool) "the kills actually happened" true
    (s.Telemetry.worker_crashes > 0)

let test_differential_survives_node_kills () =
  (* The sharded acceptance property end-to-end: SIGKILL node 0 on the
     first round of every batch — losing a whole pre-partitioned shard
     to the orphan pool each time — and the tune must still be
     byte-identical, result and logical trace, to an uninterrupted
     domains -j1 run. *)
  let base_result, base_bytes, _ =
    run_algo ~backend:Backend.Domains ~jobs:1 `Cfr
  in
  let result, bytes, engine =
    run_algo ~backend:Backend.Sharded ~jobs:4 ~kill_node_after:3 `Cfr
  in
  Alcotest.(check bool) "result identical despite node kills" true
    (result = base_result);
  Alcotest.(check string) "logical trace identical despite node kills"
    base_bytes bytes;
  let s = Telemetry.snapshot (Engine.telemetry engine) in
  Alcotest.(check bool) "the node kills actually happened" true
    (s.Telemetry.worker_crashes > 0)

(* --- differential: text vs binary cache format -------------------------- *)

(* The on-disk cache format must be invisible to the search: for the same
   algorithm, results and logical traces are byte-identical whether the
   checkpoint is written as v1 text or v2 binary, at any backend and jobs
   count — and the two checkpoint files, though byte-different on disk,
   load to semantically identical caches. *)
let check_format_differential configs algo name =
  let dir = Test_helpers.temp_dir "format-diff" in
  Fun.protect
    ~finally:(fun () -> Test_helpers.remove_tree dir)
    (fun () ->
      let run i format backend jobs =
        let path = Filename.concat dir (Printf.sprintf "ck-%d.cache" i) in
        let result, bytes, _ =
          run_algo ~checkpoint:(path, format) ~backend ~jobs algo
        in
        (result, bytes, Cache.bindings (quiet_load path))
      in
      let base_result, base_bytes, base_cache =
        run 0 Cache.Text Backend.Domains 1
      in
      List.iteri
        (fun i (backend, jobs) ->
          let tag =
            Printf.sprintf "%s %s -j%d" name (Backend.to_name backend) jobs
          in
          let text_result, text_bytes, text_cache =
            run ((2 * i) + 1) Cache.Text backend jobs
          in
          let bin_result, bin_bytes, bin_cache =
            run ((2 * i) + 2) Cache.Binary backend jobs
          in
          Alcotest.(check bool)
            (tag ^ ": text result = binary result = baseline")
            true
            (text_result = base_result && bin_result = base_result);
          Alcotest.(check string)
            (tag ^ ": text trace byte-identical to binary trace")
            text_bytes bin_bytes;
          Alcotest.(check string)
            (tag ^ ": trace byte-identical to baseline")
            base_bytes bin_bytes;
          Alcotest.(check bool)
            (tag ^ ": checkpoint caches semantically identical across formats")
            true
            (text_cache = bin_cache && bin_cache = base_cache))
        configs)

let full_matrix =
  [
    (Backend.Domains, 1);
    (Backend.Domains, 2);
    (Backend.Domains, 4);
    (Backend.Processes, 1);
    (Backend.Processes, 2);
    (Backend.Processes, 4);
    (Backend.Sharded, 2);
    (Backend.Sharded, 4);
  ]

(* CFR gets the full jobs/backend matrix; the other algorithms spot-check
   the extremes (sequential domains, parallel domains, parallel
   processes) to keep the suite's runtime in check. *)
let spot_matrix =
  [ (Backend.Domains, 4); (Backend.Processes, 4); (Backend.Sharded, 4) ]

let test_format_differential_cfr () =
  check_format_differential full_matrix `Cfr "cfr"

let test_format_differential_fr () =
  check_format_differential spot_matrix `Fr "fr"

let test_format_differential_random () =
  check_format_differential spot_matrix `Random "random"

let test_format_differential_adaptive_sh () =
  check_format_differential spot_matrix `AdaptiveSh "adaptive-sh"

let sample_jobs n =
  let rng = Rng.create 11 in
  Array.init n (fun i ->
      {
        Engine.build =
          Engine.Uniform { cv = Ft_flags.Space.sample rng; instrumented = false };
        rng = Rng.of_label rng (string_of_int i);
      })

let test_worker_crash_exhausts_to_outcome () =
  (* With no retry budget, a killed worker's job must surface as the
     typed Worker_crashed outcome — quarantined, counted, and isolated
     from its siblings. *)
  let policy = { Engine.default_policy with Engine.max_retries = 0 } in
  let engine =
    Engine.create ~jobs:2 ~backend:Backend.Processes ~kill_workers_after:0
      ~policy ()
  in
  let outcomes =
    Engine.try_measure_batch engine ~toolchain ~program:swim ~input
      (sample_jobs 8)
  in
  let crashed = ref 0 in
  Array.iter
    (function
      | Engine.Worker_crashed detail ->
          incr crashed;
          Alcotest.(check bool) "crash detail carried" true
            (String.length detail > 0)
      | Engine.Ok _ -> ()
      | o -> Alcotest.fail ("unexpected outcome: " ^ Engine.outcome_to_string o))
    outcomes;
  Alcotest.(check int) "exactly the in-flight job is lost" 1 !crashed;
  let s = Telemetry.snapshot (Engine.telemetry engine) in
  Alcotest.(check int) "telemetry counts the crash" 1
    s.Telemetry.worker_crashes;
  Alcotest.(check bool) "crashed key quarantined" true
    (Quarantine.length (Engine.quarantine engine) > 0)

let test_worker_crash_retries_recover () =
  (* Default policy: the chaos kill on round 0 is absorbed by the retry
     rounds, so every outcome is Ok and bit-identical to domains.  Each
     engine gets a freshly sampled job array: the rng streams inside are
     mutable, so sharing one array across runs would skew the noise. *)
  let domains = Engine.create ~jobs:1 () in
  let expected =
    Engine.try_measure_batch domains ~toolchain ~program:swim ~input
      (sample_jobs 12)
  in
  let engine =
    Engine.create ~jobs:3 ~backend:Backend.Processes ~kill_workers_after:1 ()
  in
  let got =
    Engine.try_measure_batch engine ~toolchain ~program:swim ~input
      (sample_jobs 12)
  in
  Alcotest.(check bool) "retried batch bit-identical to domains" true
    (got = expected);
  let s = Telemetry.snapshot (Engine.telemetry engine) in
  Alcotest.(check int) "one crash recorded" 1 s.Telemetry.worker_crashes;
  Alcotest.(check int) "no crash survives to quarantine" 0
    (Quarantine.length (Engine.quarantine engine))

let test_node_crash_exhausts_to_outcome () =
  (* Sharded sibling of the worker-crash test: with no retry budget, a
     killed node's in-flight job surfaces as the typed Worker_crashed
     outcome while its queued shard-mates still complete. *)
  let policy = { Engine.default_policy with Engine.max_retries = 0 } in
  let engine =
    Engine.create ~backend:Backend.Sharded ~nodes:2 ~kill_node_after:0
      ~policy ()
  in
  let outcomes =
    Engine.try_measure_batch engine ~toolchain ~program:swim ~input
      (sample_jobs 8)
  in
  let crashed = ref 0 in
  Array.iter
    (function
      | Engine.Worker_crashed detail ->
          incr crashed;
          Alcotest.(check bool) "crash detail carried" true
            (String.length detail > 0)
      | Engine.Ok _ -> ()
      | o -> Alcotest.fail ("unexpected outcome: " ^ Engine.outcome_to_string o))
    outcomes;
  Alcotest.(check int) "exactly the in-flight job is lost" 1 !crashed;
  let s = Telemetry.snapshot (Engine.telemetry engine) in
  Alcotest.(check int) "telemetry counts the crash" 1
    s.Telemetry.worker_crashes;
  Alcotest.(check bool) "crashed key quarantined" true
    (Quarantine.length (Engine.quarantine engine) > 0)

let test_worker_crashes_derivable_from_trace () =
  (* Crashes are wall-trace events like every other counter: deriving
     counters from the trace must reproduce telemetry exactly, kills
     included (the processes-backend extension of suite_obs's
     check_counters property). *)
  let trace = Trace.create ~clock:Trace.Wall () in
  let engine =
    Engine.create ~jobs:3 ~backend:Backend.Processes ~kill_workers_after:1
      ~trace ()
  in
  ignore
    (Engine.try_measure_batch engine ~toolchain ~program:swim ~input
       (sample_jobs 12));
  let s = Telemetry.snapshot (Engine.telemetry engine) in
  let d =
    Ft_obs.Report.derive
      (List.map (fun st -> st.Trace.event) (Trace.events trace))
  in
  Alcotest.(check bool) "kills happened" true (s.Telemetry.worker_crashes > 0);
  Alcotest.(check int) "worker_crashes derivable from wall trace"
    s.Telemetry.worker_crashes d.Ft_obs.Report.worker_crashes

(* --- shared cache across processes ------------------------------------ *)

let summary_of_seed seed =
  {
    Exec.sum_total_s = float_of_int (seed mod 97) +. 0.5;
    sum_nonloop_s = float_of_int (seed mod 13) +. 0.25;
    sum_loops = [ ("calc1", float_of_int seed /. 7.0) ];
  }

let test_cache_sync_concurrent_writers () =
  (* Four forked children race Cache.sync against one file, each bringing
     disjoint entries; the advisory lock must serialize the read-merge-
     write cycles so the final file is the exact union. *)
  let dir = Test_helpers.temp_dir "cache-sync" in
  let path = Filename.concat dir "shared.cache" in
  let entries_of child =
    List.init 25 (fun k -> (Printf.sprintf "child-%d-key-%d" child k, summary_of_seed (child * 100 + k)))
  in
  flush stdout;
  flush stderr;
  let pids =
    List.init 4 (fun child ->
        match Unix.fork () with
        | 0 ->
            (* In the child: never return into Alcotest — _exit always. *)
            (try
               let c = Cache.create () in
               List.iter (fun (k, s) -> Cache.add c k s) (entries_of child);
               ignore (Cache.sync c ~path);
               Unix._exit 0
             with _ -> Unix._exit 1)
        | pid -> pid)
  in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> Alcotest.fail "a syncing child failed")
    pids;
  let merged = Cache.load ~warn:(fun ~line:_ ~reason:_ -> ()) path in
  Alcotest.(check int) "every child's entries survive" 100
    (Cache.length merged);
  List.iter
    (fun child ->
      List.iter
        (fun (k, s) ->
          Alcotest.(check bool) ("entry survives: " ^ k) true
            (Cache.find merged k = Some s))
        (entries_of child))
    [ 0; 1; 2; 3 ];
  Test_helpers.remove_tree dir

let test_v1_to_v2_migration () =
  (* A v1 text cache (an old checkpoint or --warm-start file) must be
     adopted wholesale by a binary-writer sync and migrated to v2 in
     place, losing nothing. *)
  let dir = Test_helpers.temp_dir "migrate" in
  let path = Filename.concat dir "c.cache" in
  Fun.protect
    ~finally:(fun () -> Test_helpers.remove_tree dir)
    (fun () ->
      let old_entries =
        List.init 20 (fun k -> (Printf.sprintf "v1-key-%d" k, summary_of_seed k))
      in
      let old = Cache.create () in
      List.iter (fun (k, s) -> Cache.add old k s) old_entries;
      Cache.save ~format:Cache.Text old ~path;
      Alcotest.(check bool) "v1 text on disk" true
        (Ft_engine.Cache_codec.detect (Test_helpers.read_file path) = `Text);
      let fresh = Cache.create () in
      Cache.add fresh "v2-key" (summary_of_seed 999);
      let adopted = Cache.sync fresh ~path in
      Alcotest.(check int) "every v1 entry adopted" 20 adopted;
      Alcotest.(check bool) "migrated to v2 binary on disk" true
        (Ft_engine.Cache_codec.detect (Test_helpers.read_file path) = `Binary);
      let reloaded = quiet_load path in
      Alcotest.(check int) "union survives the migration" 21
        (Cache.length reloaded);
      List.iter
        (fun (k, s) ->
          Alcotest.(check bool) ("v1 entry survives: " ^ k) true
            (Cache.find reloaded k = Some s))
        (("v2-key", summary_of_seed 999) :: old_entries))

let test_sync_survives_sigkill_mid_append () =
  (* The crash-safety property at the file-protocol level: a writer
     SIGKILLed at an arbitrary point of its sync loop — possibly holding
     the sidecar lock, possibly mid-append, possibly mid-compaction —
     must cost at most its own uncommitted tail.  Concurrent and later
     writers heal the torn tail (decode refuses it; the next sync
     truncates or compacts it away) and lose none of their own entries. *)
  let dir = Test_helpers.temp_dir "sync-kill" in
  let path = Filename.concat dir "shared.cache" in
  Fun.protect
    ~finally:(fun () -> Test_helpers.remove_tree dir)
    (fun () ->
      let r, w = Unix.pipe () in
      flush stdout;
      flush stderr;
      let victim =
        match Unix.fork () with
        | 0 ->
            (* Loop forever, syncing a fresh batch each round and
               signalling the parent after each committed sync; the
               parent's SIGKILL lands at an arbitrary protocol point. *)
            (try
               Unix.close r;
               let c = Cache.create () in
               let round = ref 0 in
               while true do
                 incr round;
                 List.iter
                   (fun k ->
                     Cache.add c
                       (Printf.sprintf "victim-%d-%d" !round k)
                       (summary_of_seed ((1000 * !round) + k)))
                   [ 0; 1; 2; 3; 4 ];
                 ignore (Cache.sync c ~path);
                 ignore (Unix.write w (Bytes.of_string "s") 0 1)
               done;
               Unix._exit 0
             with _ -> Unix._exit 1)
        | pid -> pid
      in
      Unix.close w;
      (* Two acknowledged syncs, so rounds 1 and 2 are committed; then
         kill wherever the victim happens to be. *)
      let b = Bytes.create 1 in
      ignore (Unix.read r b 0 1);
      ignore (Unix.read r b 0 1);
      Unix.kill victim Sys.sigkill;
      ignore (Unix.waitpid [] victim);
      Unix.close r;
      (* Now race three fresh writers over the possibly-torn file. *)
      let entries_of child =
        List.init 25 (fun k ->
            ( Printf.sprintf "writer-%d-key-%d" child k,
              summary_of_seed ((child * 100) + k) ))
      in
      flush stdout;
      flush stderr;
      let pids =
        List.init 3 (fun child ->
            match Unix.fork () with
            | 0 ->
                (try
                   let c = Cache.create () in
                   (* Five delta-sync rounds of five entries each. *)
                   List.iteri
                     (fun i (k, s) ->
                       Cache.add c k s;
                       if (i + 1) mod 5 = 0 then ignore (Cache.sync c ~path))
                     (entries_of child);
                   Unix._exit 0
                 with _ -> Unix._exit 1)
            | pid -> pid)
      in
      List.iter
        (fun pid ->
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _, _ -> Alcotest.fail "a syncing writer failed")
        pids;
      let merged = quiet_load path in
      (* Every surviving writer's entry is present... *)
      List.iter
        (fun child ->
          List.iter
            (fun (k, s) ->
              Alcotest.(check bool) ("writer entry survives: " ^ k) true
                (Cache.find merged k = Some s))
            (entries_of child))
        [ 0; 1; 2 ];
      (* ...and so is everything the victim committed before the kill. *)
      List.iter
        (fun round ->
          List.iter
            (fun k ->
              let key = Printf.sprintf "victim-%d-%d" round k in
              Alcotest.(check bool) ("committed victim entry survives: " ^ key)
                true
                (Cache.find merged key
                = Some (summary_of_seed ((1000 * round) + k))))
            [ 0; 1; 2; 3; 4 ])
        [ 1; 2 ];
      (* The healed file stays appendable. *)
      let late = Cache.create () in
      Cache.add late "late-key" (summary_of_seed 7);
      ignore (Cache.sync late ~path);
      let final = quiet_load path in
      Alcotest.(check bool) "file still appendable after the kill" true
        (Cache.find final "late-key" = Some (summary_of_seed 7));
      Alcotest.(check bool) "append after heal loses nothing" true
        (Cache.find final "writer-2-key-24" = Some (summary_of_seed 224)))

(* --- stale temp-file sweep --------------------------------------------- *)

let age_file path =
  (* Backdate far past the sweep's grace period. *)
  let old = Unix.gettimeofday () -. (2.0 *. Atomic_file.default_grace_s) in
  Unix.utimes path old old

let test_load_sweeps_stale_tmp_files () =
  (* Orphaned temporaries of SIGKILLed writers (older than the grace
     period) are removed by the next load; fresh temporaries — a live
     writer mid-emit — and the committed file itself are untouched. *)
  let dir = Test_helpers.temp_dir "sweep" in
  let path = Filename.concat dir "c.cache" in
  Fun.protect
    ~finally:(fun () -> Test_helpers.remove_tree dir)
    (fun () ->
      let c = Cache.create () in
      Cache.add c (Cache.digest "k") (summary_of_seed 3);
      Cache.save c ~path;
      let stale =
        List.map
          (fun i ->
            let p = Filename.concat dir (Printf.sprintf ".c.cache%d.tmp" i) in
            Test_helpers.write_file p "orphaned garbage";
            age_file p;
            p)
          [ 0; 1 ]
      in
      let fresh = Filename.concat dir ".c.cacheF.tmp" in
      Test_helpers.write_file fresh "live writer mid-emit";
      let unrelated = Filename.concat dir ".other.cache9.tmp" in
      Test_helpers.write_file unrelated "someone else's temp";
      age_file unrelated;
      Alcotest.(check (list string))
        "stale_tmp_files finds exactly the orphans"
        (List.sort compare stale)
        (List.sort compare (Atomic_file.stale_tmp_files ~path ()));
      let loaded = quiet_load path in
      Alcotest.(check bool) "committed data intact" true
        (Cache.find loaded (Cache.digest "k") = Some (summary_of_seed 3));
      List.iter
        (fun p ->
          Alcotest.(check bool) ("orphan swept: " ^ p) false
            (Sys.file_exists p))
        stale;
      Alcotest.(check bool) "fresh tmp file untouched" true
        (Sys.file_exists fresh);
      Alcotest.(check bool) "other file's tmp untouched" true
        (Sys.file_exists unrelated))

let test_sync_sweeps_stale_tmp_files () =
  let dir = Test_helpers.temp_dir "sweep-sync" in
  let path = Filename.concat dir "c.cache" in
  Fun.protect
    ~finally:(fun () -> Test_helpers.remove_tree dir)
    (fun () ->
      let orphan = Filename.concat dir ".c.cacheX.tmp" in
      Test_helpers.write_file orphan "orphaned garbage";
      age_file orphan;
      let c = Cache.create () in
      Cache.add c (Cache.digest "k") (summary_of_seed 5);
      ignore (Cache.sync c ~path);
      Alcotest.(check bool) "orphan swept by sync" false
        (Sys.file_exists orphan);
      Alcotest.(check bool) "sync still committed" true
        (Cache.find (quiet_load path) (Cache.digest "k")
        = Some (summary_of_seed 5)))

(* --- QCheck crash injection: Atomic_file and Cache persistence --------- *)

let loop_name_gen =
  QCheck.Gen.(
    map
      (fun (a, b) -> Printf.sprintf "loop_%c%d" (Char.chr (97 + (a mod 26))) b)
      (pair (int_bound 25) (int_bound 99)))

let summary_gen =
  QCheck.Gen.(
    map
      (fun (total, nonloop, loops) ->
        { Exec.sum_total_s = total; sum_nonloop_s = nonloop; sum_loops = loops })
      (triple (float_bound_exclusive 1000.0) (float_bound_exclusive 100.0)
         (list_size (int_bound 4) (pair loop_name_gen (float_bound_exclusive 50.0)))))

let cache_entries_gen =
  QCheck.Gen.(
    list_size (int_range 1 30)
      (pair (map Cache.digest (string_size (int_range 1 20))) summary_gen))

let cache_entries_arb =
  QCheck.make ~print:(fun l -> Printf.sprintf "<%d entries>" (List.length l))
    cache_entries_gen

let cache_of entries =
  let c = Cache.create () in
  List.iter (fun (k, s) -> Cache.add c k s) entries;
  c

let prop_truncation_never_corrupts =
  (* Chop a saved cache at an arbitrary byte: load must either reject the
     file outright (header torn: Corrupt) or return a strict subset of
     the committed entries — never a corrupted or invented one. *)
  QCheck.Test.make ~count:60 ~name:"truncated cache file never corrupts a read"
    QCheck.(pair cache_entries_arb (int_bound 10_000))
    (fun (entries, cut_seed) ->
      let dir = Test_helpers.temp_dir "trunc" in
      let path = Filename.concat dir "c.cache" in
      Fun.protect
        ~finally:(fun () -> Test_helpers.remove_tree dir)
        (fun () ->
          let original = cache_of entries in
          Cache.save original ~path;
          let bytes = Test_helpers.read_file path in
          let cut = cut_seed mod (String.length bytes + 1) in
          Test_helpers.write_file path (String.sub bytes 0 cut);
          match quiet_load path with
          | exception Cache.Corrupt _ ->
              (* Acceptable only while the header itself is torn. *)
              cut < String.length "ft-engine-cache/1\n"
          | recovered ->
              List.for_all
                (fun (k, s) -> Cache.find original k = Some s)
                (Cache.bindings recovered)))

let prop_leftover_tmp_files_ignored =
  (* Stale temporaries from crashed writers may litter the directory; a
     load of the committed file must not see them. *)
  QCheck.Test.make ~count:30 ~name:"leftover .tmp files never affect a load"
    cache_entries_arb
    (fun entries ->
      let dir = Test_helpers.temp_dir "tmplitter" in
      let path = Filename.concat dir "c.cache" in
      Fun.protect
        ~finally:(fun () -> Test_helpers.remove_tree dir)
        (fun () ->
          let original = cache_of entries in
          Cache.save original ~path;
          List.iter
            (fun i ->
              Test_helpers.write_file
                (Filename.concat dir (Printf.sprintf ".c.cache%d.tmp" i))
                "torn garbage\x00not a cache")
            [ 0; 1; 2 ];
          let recovered = quiet_load path in
          Cache.bindings recovered = Cache.bindings original))

let prop_crashed_writer_keeps_snapshot =
  (* An emit that raises mid-write (a "crash" of the writer) must leave
     the previously committed snapshot byte-intact and clean up its
     temporary. *)
  QCheck.Test.make ~count:60 ~name:"torn atomic write keeps last snapshot"
    QCheck.(pair cache_entries_arb (int_bound 500))
    (fun (entries, partial) ->
      let dir = Test_helpers.temp_dir "tornwrite" in
      let path = Filename.concat dir "c.cache" in
      Fun.protect
        ~finally:(fun () -> Test_helpers.remove_tree dir)
        (fun () ->
          Cache.save (cache_of entries) ~path;
          let committed = Test_helpers.read_file path in
          (match
             Atomic_file.write ~path (fun oc ->
                 output_string oc (String.make partial 'x');
                 raise Exit)
           with
          | exception Exit -> ()
          | () -> failwith "emit crash swallowed");
          let survives = Test_helpers.read_file path = committed in
          let no_litter =
            Array.for_all
              (fun name -> not (Filename.check_suffix name ".tmp"))
              (Sys.readdir dir)
          in
          survives && no_litter))

let prop_save_load_roundtrip_bit_exact =
  QCheck.Test.make ~count:60 ~name:"save/load round-trip is bit-exact"
    cache_entries_arb
    (fun entries ->
      let dir = Test_helpers.temp_dir "roundtrip" in
      let path = Filename.concat dir "c.cache" in
      Fun.protect
        ~finally:(fun () -> Test_helpers.remove_tree dir)
        (fun () ->
          let original = cache_of entries in
          Cache.save original ~path;
          Cache.bindings (quiet_load path) = Cache.bindings original))

let suite =
  ( "backend",
    [
      Alcotest.test_case "backend names round-trip" `Quick test_backend_names;
      Alcotest.test_case "procpool preserves order" `Quick
        test_procpool_map_in_order;
      Alcotest.test_case "procpool isolates raised exceptions" `Quick
        test_procpool_raised_is_isolated;
      Alcotest.test_case "procpool on_result once per index" `Quick
        test_procpool_on_result_once_per_index;
      Alcotest.test_case "procpool kill surfaces as crash" `Quick
        test_procpool_kill_surfaces_as_crash;
      Alcotest.test_case "procpool rejects workers=0" `Quick
        test_procpool_rejects_bad_workers;
      Alcotest.test_case "shard preserves order under stealing" `Quick
        test_shard_map_in_order;
      Alcotest.test_case "shard isolates raised exceptions" `Quick
        test_shard_raised_is_isolated;
      Alcotest.test_case "shard on_result once per index" `Quick
        test_shard_on_result_once_per_index;
      Alcotest.test_case "shard kill surfaces as crash" `Quick
        test_shard_kill_surfaces_as_crash;
      Alcotest.test_case "shard orphaned queue migrates" `Quick
        test_shard_orphaned_shard_migrates;
      Alcotest.test_case "shard rejects nodes=0" `Quick
        test_shard_rejects_bad_nodes;
      Alcotest.test_case "cfr differential (procs+shard 1/2/4)" `Quick
        test_differential_cfr;
      Alcotest.test_case "fr differential (procs+shard 1/2/4)" `Quick
        test_differential_fr;
      Alcotest.test_case "random differential (procs+shard 1/2/4)" `Quick
        test_differential_random;
      Alcotest.test_case "adaptive-sh differential (procs+shard 1/2/4)" `Quick
        test_differential_adaptive_sh;
      Alcotest.test_case "differential survives worker kills" `Quick
        test_differential_survives_worker_kills;
      Alcotest.test_case "differential survives node kills" `Quick
        test_differential_survives_node_kills;
      Alcotest.test_case "cfr format differential (full matrix)" `Quick
        test_format_differential_cfr;
      Alcotest.test_case "fr format differential" `Quick
        test_format_differential_fr;
      Alcotest.test_case "random format differential" `Quick
        test_format_differential_random;
      Alcotest.test_case "adaptive-sh format differential" `Quick
        test_format_differential_adaptive_sh;
      Alcotest.test_case "worker crash exhausts to typed outcome" `Quick
        test_worker_crash_exhausts_to_outcome;
      Alcotest.test_case "worker crash retries recover bit-identically" `Quick
        test_worker_crash_retries_recover;
      Alcotest.test_case "node crash exhausts to typed outcome" `Quick
        test_node_crash_exhausts_to_outcome;
      Alcotest.test_case "worker crashes derivable from wall trace" `Quick
        test_worker_crashes_derivable_from_trace;
      Alcotest.test_case "concurrent Cache.sync writers union" `Quick
        test_cache_sync_concurrent_writers;
      Alcotest.test_case "v1 text cache migrates to v2 binary" `Quick
        test_v1_to_v2_migration;
      Alcotest.test_case "sync survives SIGKILL mid-append" `Quick
        test_sync_survives_sigkill_mid_append;
      Alcotest.test_case "load sweeps stale tmp orphans" `Quick
        test_load_sweeps_stale_tmp_files;
      Alcotest.test_case "sync sweeps stale tmp orphans" `Quick
        test_sync_sweeps_stale_tmp_files;
      QCheck_alcotest.to_alcotest prop_truncation_never_corrupts;
      QCheck_alcotest.to_alcotest prop_leftover_tmp_files_ignored;
      QCheck_alcotest.to_alcotest prop_crashed_writer_keeps_snapshot;
      QCheck_alcotest.to_alcotest prop_save_load_roundtrip_bit_exact;
    ] )
