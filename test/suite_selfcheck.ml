(* Differential checkpoint/resume equivalence, driven by the Selfcheck
   oracle: for cfr/fr/random at jobs 1/2/4, kill the search at EVERY
   evaluation boundary, resume from the snapshot, and require the result,
   cache, quarantine and normalized logical trace to reproduce
   byte-for-byte (plus the cache-merge round-trip).  The suite is
   parameterized over the execution backend: the domains variant runs in
   test_main, the processes variant in test_backend (forking is illegal
   in a process that ever spawned a domain). *)

open Ft_prog
module Engine = Ft_engine.Engine
module Cache = Ft_engine.Cache
module Quarantine = Ft_engine.Quarantine
module Backend = Ft_engine.Backend
module Selfcheck = Ft_engine.Selfcheck
module Exec = Ft_machine.Exec
module Fault = Ft_fault.Fault
module Tuner = Funcytuner.Tuner
module Result = Funcytuner.Result

let program = Option.get (Ft_suite.Suite.find "363.swim")
let platform = Platform.Broadwell
let input = Ft_suite.Suite.tuning_input platform program

(* Small pool so kill-at-every-boundary stays cheap: cfr performs
   2 * pool evaluations (collection + search), fr/random perform pool. *)
let pool_size = 6

(* Bit-exact result rendering (%h floats), mirroring the CLI's. *)
let render_result (r : Result.t) =
  let config =
    match r.Result.configuration with
    | Result.Whole_program cv -> "uniform:" ^ Ft_flags.Cv.to_compact cv
    | Result.Per_module assignment ->
        String.concat ","
          (List.map
             (fun (m, cv) -> m ^ "=" ^ Ft_flags.Cv.to_compact cv)
             assignment)
  in
  Printf.sprintf "%s|%h|%h|%d|%s|%s" r.Result.algorithm r.Result.best_seconds
    r.Result.speedup r.Result.evaluations config
    (String.concat "," (List.map (Printf.sprintf "%h") r.Result.trace))

let with_scratch f =
  let dir = Test_helpers.temp_dir "selfcheck" in
  Fun.protect ~finally:(fun () -> Test_helpers.remove_tree dir) (fun () -> f dir)

let search_of algo engine =
  let session =
    Tuner.make_session ~pool_size ~engine ~platform ~program ~input ~seed:42 ()
  in
  render_result
    (match algo with
    | `Cfr -> Tuner.run_cfr ~top_x:3 session
    | `Fr -> Funcytuner.Fr.run session.Tuner.ctx session.Tuner.outline
    | `Random -> Funcytuner.Random_search.run session.Tuner.ctx
    | `AdaptiveSh ->
        Funcytuner.Adaptive_sh.run ~top_x:3 session.Tuner.ctx
          (Lazy.force session.Tuner.collection))

let oracle ?(policy = Engine.default_policy) ?kill_points ~backend ~jobs ~algo
    () =
  with_scratch @@ fun scratch ->
  let make_engine ~cache ~quarantine ~checkpoint ~trace =
    (* [jobs] doubles as the sharded backend's node count. *)
    Engine.create ~jobs ~nodes:jobs ~backend ~cache ~quarantine ~policy
      ?checkpoint ?trace ()
  in
  Selfcheck.run ?kill_points ~scratch ~label:"test" ~make_engine
    ~search:(search_of algo) ()

(* Every boundary: pass an over-long kill list and let the oracle clamp it
   to the reference run's [1..evaluations] range. *)
let every_boundary = List.init 64 (fun i -> i + 1)

let test_kill_everywhere ~backend ~algo ~jobs () =
  let o = oracle ~kill_points:every_boundary ~backend ~jobs ~algo () in
  Alcotest.(check bool)
    ("all boundaries covered: " ^ Selfcheck.render o)
    true
    (List.length o.Selfcheck.kill_points = o.Selfcheck.evaluations
    && o.Selfcheck.evaluations > 0);
  Alcotest.(check bool) (Selfcheck.render o) true (Selfcheck.passed o)

let test_faulty_search_equivalence ~backend () =
  let policy =
    {
      Engine.default_policy with
      Engine.faults = Some (Fault.make ~seed:7 ~rate:0.3 ());
    }
  in
  let o =
    oracle ~policy ~kill_points:every_boundary ~backend ~jobs:2 ~algo:`Cfr ()
  in
  Alcotest.(check bool) (Selfcheck.render o) true (Selfcheck.passed o)

(* The oracle must catch real state corruption, not just bless everything:
   tamper with one cached summary on the resume path and require a
   divergence.  (Reference and doomed runs receive fresh empty caches, so
   only the engine resumed from a snapshot is affected.) *)
let test_oracle_catches_tampered_resume ~backend () =
  with_scratch @@ fun scratch ->
  let make_engine ~cache ~quarantine ~checkpoint ~trace =
    (match Cache.bindings cache with
    | (key, s) :: _ ->
        Cache.add cache key
          { s with Exec.sum_total_s = s.Exec.sum_total_s *. 2.0 }
    | [] -> ());
    Engine.create ~jobs:2 ~nodes:2 ~backend ~cache ~quarantine ?checkpoint
      ?trace ()
  in
  let o =
    Selfcheck.run ~kill_points:[ 4 ] ~scratch ~label:"tampered" ~make_engine
      ~search:(search_of `Cfr) ()
  in
  Alcotest.(check bool) "tampered resume diverges" false (Selfcheck.passed o);
  Alcotest.(check bool) "divergence names the cache" true
    (List.exists
       (fun d -> d.Selfcheck.part = "cache")
       o.Selfcheck.divergences)

let cases backend =
  let matrix =
    List.concat_map
      (fun (name, algo) ->
        List.map
          (fun jobs ->
            Alcotest.test_case
              (Printf.sprintf "%s jobs=%d: kill at every boundary" name jobs)
              `Slow
              (test_kill_everywhere ~backend ~algo ~jobs))
          [ 1; 2; 4 ])
      [
        ("cfr", `Cfr);
        ("fr", `Fr);
        ("random", `Random);
        ("adaptive-sh", `AdaptiveSh);
      ]
  in
  matrix
  @ [
      Alcotest.test_case "cfr under faults: kill at every boundary" `Slow
        (test_faulty_search_equivalence ~backend);
      Alcotest.test_case "oracle catches a tampered resume" `Quick
        (test_oracle_catches_tampered_resume ~backend);
    ]

let suite = ("selfcheck", cases Backend.Domains)
let suite_processes = ("selfcheck-processes", cases Backend.Processes)
let suite_sharded = ("selfcheck-sharded", cases Backend.Sharded)
