(* Golden-file tests: the CSV bytes of two figure-shaped experiments are
   pinned under test/golden/ and compared byte-for-byte against an
   in-process regeneration with the same seed and pool size.

   The files were produced by (and are regenerated with):

     make golden
     # = dune exec bin/funcy.exe -- experiment fig5c fig7a -k 12 \
     #     --csv-dir test/golden

   so any change to the sampling order, the search algorithms, the CSV
   writer or the float formatting shows up as a reviewable golden diff. *)

module Lab = Ft_experiments.Lab
module Csv = Ft_experiments.Csv

let read_file path = In_channel.with_open_bin path In_channel.input_all

let lab = lazy (Lab.create ~seed:42 ~pool_size:12 ())

let check_golden name series =
  let path = Filename.concat "golden" name in
  Alcotest.(check string) (name ^ " matches golden bytes") (read_file path)
    (Csv.of_series series)

let test_fig5c () =
  check_golden "fig5c.csv"
    (Ft_experiments.Fig5.panel (Lazy.force lab) Ft_prog.Platform.Broadwell)

let test_fig7a () =
  check_golden "fig7a.csv"
    (Ft_experiments.Fig7.panel (Lazy.force lab) ~small:true)

let suite =
  ( "golden",
    [
      Alcotest.test_case "fig5c csv bytes" `Quick test_fig5c;
      Alcotest.test_case "fig7a csv bytes" `Quick test_fig7a;
    ] )
